#include "opto/obs/compare.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <set>
#include <sstream>

#include "opto/obs/bench_record.hpp"

namespace opto::obs {

namespace {

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool is_timing_metric(std::string_view name) {
  return ends_with(name, "_per_s") || name == "wall_s" ||
         name.find("wall_ns") != std::string_view::npos ||
         ends_with(name, "_ns");
}

/// (label, record) pairs from a single record or a suite roll-up.
std::vector<std::pair<std::string, const JsonValue*>> collect_records(
    const JsonValue& document) {
  std::vector<std::pair<std::string, const JsonValue*>> out;
  const std::string schema = document.string_at("schema");
  if (schema == kBenchRecordSchema) {
    out.emplace_back(document.string_at("label", "unnamed"), &document);
  } else if (schema == kBenchSuiteSchema) {
    if (const JsonValue* records = document.find("records");
        records != nullptr && records->is_array()) {
      for (const JsonValue& record : records->items)
        out.emplace_back(record.string_at("label", "unnamed"), &record);
    }
  }
  return out;
}

/// current/baseline with > 1 always meaning "got better"; guards zeros.
double oriented_ratio(Direction direction, double baseline, double current) {
  const double good = direction == Direction::HigherBetter ? current : baseline;
  const double bad = direction == Direction::HigherBetter ? baseline : current;
  if (bad > 0.0) return good / bad;
  return good > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
}

}  // namespace

Direction metric_direction(std::string_view name) {
  if (ends_with(name, "_per_s")) return Direction::HigherBetter;
  if (is_timing_metric(name)) return Direction::LowerBetter;
  if (name.substr(0, 6) == "allocs") return Direction::LowerBetter;
  return Direction::Neutral;
}

const char* to_string(MetricStatus status) {
  switch (status) {
    case MetricStatus::Improved: return "improved";
    case MetricStatus::Unchanged: return "ok";
    case MetricStatus::Regressed: return "REGRESSION";
    case MetricStatus::Blowup: return "BLOWUP";
    case MetricStatus::SkippedNoise: return "skipped-noise";
    case MetricStatus::Neutral: return "info";
    case MetricStatus::MissingCurrent: return "MISSING";
    case MetricStatus::MissingBaseline: return "new-metric";
  }
  return "?";
}

CompareReport compare_records(const JsonValue& baseline,
                              const JsonValue& current,
                              const CompareOptions& options) {
  CompareReport report;
  const auto baseline_records = collect_records(baseline);
  const auto current_records = collect_records(current);

  const auto find_current =
      [&](const std::string& label) -> const JsonValue* {
    for (const auto& [name, record] : current_records)
      if (name == label) return record;
    return nullptr;
  };

  for (const auto& [label, old_record] : baseline_records) {
    const JsonValue* new_record = find_current(label);
    if (new_record == nullptr) {
      report.missing_records.push_back(label);
      continue;
    }
    const JsonValue* old_metrics = old_record->find("metrics");
    const JsonValue* new_metrics = new_record->find("metrics");
    const double old_wall = old_record->is_object() && old_metrics != nullptr
                                ? old_metrics->number_at("measured_wall_ns")
                                : 0.0;
    const double new_wall = new_metrics != nullptr
                                ? new_metrics->number_at("measured_wall_ns")
                                : 0.0;

    std::set<std::string> names;
    if (old_metrics != nullptr && old_metrics->is_object())
      for (const auto& [name, value] : old_metrics->members)
        names.insert(name);
    if (new_metrics != nullptr && new_metrics->is_object())
      for (const auto& [name, value] : new_metrics->members)
        names.insert(name);

    for (const std::string& name : names) {
      MetricDelta delta;
      delta.record = label;
      delta.metric = name;
      const JsonValue* old_value =
          old_metrics != nullptr ? old_metrics->find(name) : nullptr;
      const JsonValue* new_value =
          new_metrics != nullptr ? new_metrics->find(name) : nullptr;
      const Direction direction = metric_direction(name);
      if (old_value != nullptr) delta.baseline = old_value->as_number();
      if (new_value != nullptr) delta.current = new_value->as_number();

      if (direction == Direction::Neutral) {
        delta.status = MetricStatus::Neutral;
      } else if (new_value == nullptr) {
        delta.status = MetricStatus::MissingCurrent;
        ++report.regressions;
      } else if (old_value == nullptr) {
        delta.status = MetricStatus::MissingBaseline;
      } else if (is_timing_metric(name) &&
                 std::min(old_wall, new_wall) < options.min_wall_ns) {
        delta.status = MetricStatus::SkippedNoise;
      } else {
        delta.ratio = oriented_ratio(direction, delta.baseline, delta.current);
        if (delta.ratio < 1.0 / options.blowup) {
          delta.status = MetricStatus::Blowup;
          ++report.blowups;
          ++report.regressions;
        } else if (delta.ratio < 1.0 - options.threshold) {
          delta.status = MetricStatus::Regressed;
          ++report.regressions;
        } else if (delta.ratio > 1.0 + options.threshold) {
          delta.status = MetricStatus::Improved;
        } else {
          delta.status = MetricStatus::Unchanged;
        }
      }
      report.deltas.push_back(std::move(delta));
    }
  }

  report.fail = options.warn_only
                    ? report.blowups > 0
                    : report.regressions > 0 || !report.missing_records.empty();
  return report;
}

void print_report(std::ostream& os, const CompareReport& report,
                  const CompareOptions& options) {
  std::size_t improved = 0;
  std::size_t unchanged = 0;
  std::size_t skipped = 0;
  for (const MetricDelta& delta : report.deltas) {
    switch (delta.status) {
      case MetricStatus::Improved: ++improved; break;
      case MetricStatus::Unchanged: ++unchanged; break;
      case MetricStatus::SkippedNoise: ++skipped; break;
      default: break;
    }
    // Quiet on the healthy cases, loud on anything actionable.
    if (delta.status == MetricStatus::Unchanged ||
        delta.status == MetricStatus::Neutral)
      continue;
    os << "[" << to_string(delta.status) << "] " << delta.record << "/"
       << delta.metric << ": " << delta.baseline << " -> " << delta.current;
    if (delta.status == MetricStatus::Improved ||
        delta.status == MetricStatus::Regressed ||
        delta.status == MetricStatus::Blowup)
      os << " (oriented ratio " << delta.ratio << ")";
    os << "\n";
  }
  for (const std::string& label : report.missing_records)
    os << "[MISSING-RECORD] " << label << " absent from current run\n";
  os << "bench_compare: " << report.deltas.size() << " metrics — " << improved
     << " improved, " << unchanged << " unchanged, " << report.regressions
     << " regressed (" << report.blowups << " blowups), " << skipped
     << " below noise floor"
     << (options.warn_only ? " [warn-only: blowups gate]" : "") << "\n"
     << (report.fail ? "RESULT: FAIL" : "RESULT: PASS") << "\n";
}

namespace {

JsonValue normalize_record(const JsonValue& record) {
  JsonValue out = JsonValue::make_object();
  out.add_member("schema", JsonValue::of(std::string_view(
                               record.string_at("schema", "?"))));
  out.add_member("schema_version",
                 JsonValue::of(record.number_at("schema_version")));
  out.add_member("label", JsonValue::of(std::string_view(
                              record.string_at("label", "unnamed"))));
  if (const JsonValue* notes = record.find("annotations");
      notes != nullptr && notes->is_object()) {
    JsonValue copy = JsonValue::make_object();
    for (const auto& [key, value] : notes->members)
      copy.add_member(key, value);
    out.add_member("annotations", std::move(copy));
  }
  // Counters are deterministic totals — keep them all; they are the
  // strongest cross-thread-count invariant.
  if (const JsonValue* counters = record.find("counters");
      counters != nullptr && counters->is_object()) {
    JsonValue copy = JsonValue::make_object();
    for (const auto& [key, value] : counters->members)
      copy.add_member(key, value);
    out.add_member("counters", std::move(copy));
  }
  // Phases: keep call counts, drop wall/cpu times.
  if (const JsonValue* phases = record.find("phases");
      phases != nullptr && phases->is_object()) {
    JsonValue copy = JsonValue::make_object();
    for (const auto& [name, phase] : phases->members) {
      JsonValue entry = JsonValue::make_object();
      entry.add_member("calls", JsonValue::of(phase.number_at("calls")));
      copy.add_member(name, std::move(entry));
    }
    out.add_member("phases", std::move(copy));
  }
  // env (threads, sha) and metrics (timings, rates, allocation counts)
  // are dropped wholesale: everything they contain either varies by
  // machine/thread count or is derived from the counters kept above.
  return out;
}

}  // namespace

std::string normalize_for_determinism(const JsonValue& document) {
  JsonValue out;
  if (document.string_at("schema") == kBenchSuiteSchema) {
    out = JsonValue::make_object();
    out.add_member("schema", JsonValue::of(std::string_view(kBenchSuiteSchema)));
    out.add_member("schema_version",
                   JsonValue::of(document.number_at("schema_version")));
    out.add_member("label", JsonValue::of(std::string_view(
                                document.string_at("label", "unnamed"))));
    JsonValue records = JsonValue::make_array();
    if (const JsonValue* list = document.find("records");
        list != nullptr && list->is_array())
      for (const JsonValue& record : list->items)
        records.items.push_back(normalize_record(record));
    out.add_member("records", std::move(records));
  } else {
    out = normalize_record(document);
  }
  std::ostringstream os;
  write_json(os, out, /*sorted_keys=*/true);
  os << '\n';
  return os.str();
}

JsonValue make_suite(const std::string& label, double scale,
                     std::vector<JsonValue> records) {
  JsonValue suite = JsonValue::make_object();
  suite.add_member("schema", JsonValue::of(std::string_view(kBenchSuiteSchema)));
  suite.add_member("schema_version",
                   JsonValue::of(double{kBenchRecordSchemaVersion}));
  suite.add_member("label", JsonValue::of(std::string_view(label)));
  suite.add_member("scale", JsonValue::of(scale));
  // Stable order: by record label, so roll-ups diff cleanly.
  std::stable_sort(records.begin(), records.end(),
                   [](const JsonValue& a, const JsonValue& b) {
                     return a.string_at("label") < b.string_at("label");
                   });
  JsonValue list = JsonValue::make_array();
  list.items = std::move(records);
  suite.add_member("records", std::move(list));
  return suite;
}

}  // namespace opto::obs
