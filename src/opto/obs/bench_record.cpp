#include "opto/obs/bench_record.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "opto/obs/obs.hpp"
#include "opto/par/simd.hpp"
#include "opto/rng/philox.hpp"
#include "opto/util/json.hpp"
#include "opto/util/string_util.hpp"

namespace opto::obs {

namespace {

std::uint64_t counter_value(const std::vector<CounterSnapshot>& counters,
                            std::string_view name) {
  for (const auto& counter : counters)
    if (counter.name == name) return counter.value;
  return 0;
}

const PhaseSnapshot* find_phase(const std::vector<PhaseSnapshot>& phases,
                                std::string_view name) {
  for (const auto& phase : phases)
    if (phase.name == name) return &phase;
  return nullptr;
}

unsigned configured_threads() {
  if (const char* env = std::getenv("OPTO_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<unsigned>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

double env_repro_scale() {
  if (const char* env = std::getenv("REPRO_SCALE")) {
    char* end = nullptr;
    const double value = std::strtod(env, &end);
    if (end != env && value > 0.0) return value;
  }
  return 1.0;
}

}  // namespace

void write_bench_record(std::ostream& os, const std::string& label) {
  const auto counter_list = counters();
  const auto phase_list = phases();
  const auto note_map = annotations();

  JsonWriter w(os);
  w.begin_object();
  w.key("schema");
  w.value(kBenchRecordSchema);
  w.key("schema_version");
  w.value(std::int64_t{kBenchRecordSchemaVersion});
  w.key("label");
  w.value(slugify(label));

  w.key("env");
  w.begin_object();
  w.key("git_sha");
  const char* sha = std::getenv("OPTO_GIT_SHA");
  w.value(sha != nullptr && *sha != '\0' ? sha : "unknown");
  w.key("threads");
  w.value(static_cast<std::uint64_t>(configured_threads()));
  w.key("obs");
  w.value(enabled());
  w.key("repro_scale");
  w.value(env_repro_scale());
  // Provenance for perf numbers: which lane level the attempt kernels
  // dispatched to (after the OPTO_SIMD cap) and which protocol RNG
  // produced the draws. Dropped by normalize_for_determinism like the
  // rest of env — results must not depend on either.
  w.key("simd");
  w.value(simd::level_name(simd::active_level()));
  w.key("rng");
  w.value(kProtocolRngBackend);
  w.end_object();

  w.key("annotations");
  w.begin_object();
  for (const auto& [key, value] : note_map) {
    w.key(key);
    w.value(value);
  }
  w.end_object();

  w.key("counters");
  w.begin_object();
  for (const auto& counter : counter_list) {
    w.key(counter.name);
    w.value(counter.value);
  }
  w.end_object();

  w.key("phases");
  w.begin_object();
  for (const auto& phase : phase_list) {
    w.key(phase.name);
    w.begin_object();
    w.key("calls");
    w.value(phase.calls);
    w.key("wall_ns");
    w.value(phase.wall_ns);
    w.key("cpu_ns");
    w.value(phase.cpu_ns);
    w.end_object();
  }
  w.end_object();

  // Derived metrics — the comparable surface. Timing-based rates use the
  // sim.pass phase (inclusive wall time across all passes, all threads);
  // bench_compare skips them below its min-run noise floor, keyed on
  // measured_wall_ns.
  const std::uint64_t worm_steps = counter_value(counter_list, "sim.worm_steps");
  const std::uint64_t probes =
      counter_value(counter_list, "sim.registry_probes");
  const std::uint64_t hits = counter_value(counter_list, "sim.registry_hits");
  const std::uint64_t passes = counter_value(counter_list, "sim.passes");
  const std::uint64_t fault_losses =
      counter_value(counter_list, "protocol.fault_losses");
  const std::uint64_t contention_losses =
      counter_value(counter_list, "protocol.contention_losses");
  const PhaseSnapshot* pass_phase = find_phase(phase_list, "sim.pass");
  const std::uint64_t pass_wall_ns =
      pass_phase != nullptr ? pass_phase->wall_ns : 0;

  w.key("metrics");
  w.begin_object();
  w.key("wall_s");
  w.value(process_wall_seconds());
  w.key("measured_wall_ns");
  w.value(pass_wall_ns);
  if (pass_wall_ns > 0 && worm_steps > 0) {
    w.key("worm_steps_per_s");
    w.value(static_cast<double>(worm_steps) /
            (static_cast<double>(pass_wall_ns) * 1e-9));
  }
  if (probes > 0) {
    w.key("registry_hit_rate");
    w.value(static_cast<double>(hits) / static_cast<double>(probes));
  }
  if (fault_losses + contention_losses > 0) {
    w.key("fault_loss_share");
    w.value(static_cast<double>(fault_losses) /
            static_cast<double>(fault_losses + contention_losses));
  }
  if (passes > 0) {
    w.key("allocs_per_pass");
    w.value(static_cast<double>(alloc_count()) /
            static_cast<double>(passes));
  }
  // Gauges (obs::set_metric) land beside the derived metrics, in name
  // order. The engine's blocking probability and latency quantiles
  // arrive this way.
  for (const auto& metric : metrics()) {
    w.key(metric.name);
    w.value(metric.value);
  }
  w.end_object();

  w.end_object();
  os << '\n';
}

bool write_bench_record_file(const std::string& label) {
  if (!enabled()) return false;
  const char* dir = std::getenv("OPTO_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "OPTO_RESULTS_DIR: cannot create '%s': %s\n", dir,
                 ec.message().c_str());
    return false;
  }
  const std::string path =
      (std::filesystem::path(dir) / ("benchrecord_" + slugify(label) + ".json"))
          .string();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write bench record '%s'\n", path.c_str());
    return false;
  }
  write_bench_record(out, label);
  return true;
}

namespace {

std::mutex g_at_exit_mutex;
std::string g_at_exit_label;

void write_registered_record() {
  std::string label;
  {
    std::lock_guard<std::mutex> lock(g_at_exit_mutex);
    label = g_at_exit_label;
  }
  if (!label.empty()) write_bench_record_file(label);
}

}  // namespace

void install_bench_record_at_exit(const std::string& label) {
  // atexit hooks and static destructors unwind LIFO off one stack, so
  // the obs registry (a function-local static) must be constructed —
  // and its destructor registered — before our hook goes on, or a
  // caller that installs before first touching obs reads destroyed
  // maps at exit. Touching a snapshot here pins the order.
  (void)annotations();
  std::lock_guard<std::mutex> lock(g_at_exit_mutex);
  const bool first = g_at_exit_label.empty();
  g_at_exit_label = label;
  if (first) std::atexit(&write_registered_record);
}

}  // namespace opto::obs
