// Noise-aware comparison of BenchRecord / bench-suite documents — the
// logic behind tools/bench_compare, kept in the library so the threshold
// semantics are unit-testable.
//
// Per metric, the comparable direction is derived from its name:
//   *_per_s                          higher is better, timing-based
//   wall_s, *wall_ns*                lower is better, timing-based
//   allocs*                          lower is better, count-based
//   anything else                    neutral (reported, never gates)
// Timing-based metrics are skipped when either record's measured_wall_ns
// is below the min-run floor — sub-floor runs are dominated by scheduler
// noise and would make the gate flap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opto/util/json_parse.hpp"

namespace opto::obs {

enum class Direction : std::uint8_t { HigherBetter, LowerBetter, Neutral };

/// Direction implied by a metric name (see header comment).
Direction metric_direction(std::string_view name);

struct CompareOptions {
  double threshold = 0.10;      ///< relative delta that counts as a change
  double blowup = 3.0;          ///< hard-fail factor, even in warn-only mode
  double min_wall_ns = 5e7;     ///< min measured_wall_ns for timing metrics
  bool warn_only = false;       ///< regressions warn; only blowups fail
};

enum class MetricStatus : std::uint8_t {
  Improved,
  Unchanged,      ///< within threshold
  Regressed,      ///< beyond threshold in the bad direction
  Blowup,         ///< beyond the blowup factor in the bad direction
  SkippedNoise,   ///< timing metric under the min-run floor
  Neutral,        ///< informational metric, never gates
  MissingCurrent, ///< present in baseline, absent in current
  MissingBaseline ///< present in current only (new metric: informational)
};

const char* to_string(MetricStatus status);

struct MetricDelta {
  std::string record;  ///< record label the metric belongs to
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  /// current/baseline, oriented so > 1 is always an improvement
  /// (inverted for lower-better metrics); 0 when undefined.
  double ratio = 1.0;
  MetricStatus status = MetricStatus::Unchanged;
};

struct CompareReport {
  std::vector<MetricDelta> deltas;
  std::vector<std::string> missing_records;  ///< labels absent from current
  std::size_t regressions = 0;  ///< Regressed + Blowup deltas
  std::size_t blowups = 0;
  bool fail = false;  ///< final verdict under the options' mode
};

/// Compares two parsed documents (single records or suite roll-ups;
/// records are matched by label). Unknown schemas compare as empty.
CompareReport compare_records(const JsonValue& baseline,
                              const JsonValue& current,
                              const CompareOptions& options);

/// One human-readable line per delta + summary, e.g. for CI logs.
void print_report(std::ostream& os, const CompareReport& report,
                  const CompareOptions& options);

/// Canonical determinism view of a record or suite: timing-derived fields
/// (wall/cpu times, *_per_s rates, allocation counts, env) are stripped,
/// object keys are sorted. Two runs of the same workload must normalize
/// to byte-identical text regardless of OPTO_THREADS or machine speed.
std::string normalize_for_determinism(const JsonValue& document);

/// Wraps records (parsed benchrecord_*.json documents) into one
/// bench-suite roll-up value.
JsonValue make_suite(const std::string& label, double scale,
                     std::vector<JsonValue> records);

}  // namespace opto::obs
