#include "opto/obs/obs.hpp"

#include <time.h>

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>

namespace opto::obs {

namespace {

// -1 = not yet read from the environment; 0/1 = cached decision.
std::atomic<int> g_enabled{-1};

// Allocation counter. Constant-initialized so the operator new
// replacement below is safe during static initialization.
constinit std::atomic<std::uint64_t> g_allocs{0};

struct Registry {
  std::mutex mutex;
  // node-based maps: slot addresses stay stable across registrations,
  // so Counter/ScopedTimer can cache raw pointers.
  std::map<std::string, detail::CounterSlot, std::less<>> counters;
  std::map<std::string, detail::PhaseSlot, std::less<>> phases;
  std::map<std::string, std::string> annotations;
  std::map<std::string, double> metrics;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

bool enabled() {
#if OPTO_OBS_ENABLED
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("OPTO_OBS");
    state = (env != nullptr && env[0] == '0' && env[1] == '\0') ? 0 : 1;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
#else
  return false;
#endif
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {

CounterSlot* counter_slot(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end())
    it = r.counters.try_emplace(std::string(name)).first;
  return &it->second;
}

PhaseSlot* phase_slot(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.phases.find(name);
  if (it == r.phases.end()) it = r.phases.try_emplace(std::string(name)).first;
  return &it->second;
}

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

}  // namespace detail

void annotate(std::string_view key, std::string_view value) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.annotations[std::string(key)] = std::string(value);
}

void set_metric(std::string_view name, double value) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.metrics[std::string(name)] = value;
}

std::vector<MetricSnapshot> metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<MetricSnapshot> out;
  out.reserve(r.metrics.size());
  for (const auto& [name, value] : r.metrics) out.push_back({name, value});
  return out;
}

std::vector<CounterSnapshot> counters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<CounterSnapshot> out;
  out.reserve(r.counters.size());
  for (const auto& [name, slot] : r.counters)
    out.push_back({name, slot.value.load(std::memory_order_relaxed)});
  return out;
}

std::vector<PhaseSnapshot> phases() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<PhaseSnapshot> out;
  out.reserve(r.phases.size());
  for (const auto& [name, slot] : r.phases)
    out.push_back({name, slot.calls.load(std::memory_order_relaxed),
                   slot.wall_ns.load(std::memory_order_relaxed),
                   slot.cpu_ns.load(std::memory_order_relaxed)});
  return out;
}

std::map<std::string, std::string> annotations() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.annotations;
}

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, slot] : r.counters)
    slot.value.store(0, std::memory_order_relaxed);
  for (auto& [name, slot] : r.phases) {
    slot.calls.store(0, std::memory_order_relaxed);
    slot.wall_ns.store(0, std::memory_order_relaxed);
    slot.cpu_ns.store(0, std::memory_order_relaxed);
  }
  r.annotations.clear();
  r.metrics.clear();
  g_allocs.store(0, std::memory_order_relaxed);
}

double process_wall_seconds() {
  Registry& r = registry();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       r.start)
      .count();
}

}  // namespace opto::obs

#if OPTO_OBS_ENABLED

// Global allocation-count hook. Lives in this translation unit (which
// every obs user pulls in) so linking any opto binary installs it. The
// counter is one relaxed increment behind the runtime flag; allocation
// itself follows the standard malloc + new_handler contract, which keeps
// ASan/TSan interception (they hook malloc/free) working.
namespace {

void* counted_alloc(std::size_t size) {
  if (opto::obs::enabled())
    opto::obs::g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  while (true) {
    if (void* p = std::malloc(size)) return p;
    if (std::new_handler handler = std::get_new_handler())
      handler();
    else
      throw std::bad_alloc();
  }
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // OPTO_OBS_ENABLED
