// Perf-observability primitives: named monotonic counters, scoped
// wall/CPU phase timers, free-form annotations, and a global
// allocation-count hook. Everything funnels into one process-wide
// registry that bench_record.hpp serializes as a BenchRecord JSON.
//
// Cost discipline:
//  * Compile time: building with -DOPTO_OBS_ENABLED=0 turns Counter::add
//    and ScopedTimer into empty inlines in that translation unit — zero
//    instructions on the hot path.
//  * Runtime: OPTO_OBS=0 in the environment (or set_enabled(false))
//    makes every record a single cached-flag test. Observation never
//    changes simulation outcomes either way — the differential tests
//    (test_obs.cpp, test_obs_disabled.cpp) pin both properties.
//
// Counters are process-global atomics, so concurrent trials on the
// thread pool aggregate for free; snapshots are totals across threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#ifndef OPTO_OBS_ENABLED
#define OPTO_OBS_ENABLED 1
#endif

namespace opto::obs {

namespace detail {

struct CounterSlot {
  std::atomic<std::uint64_t> value{0};
};

struct PhaseSlot {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> wall_ns{0};
  std::atomic<std::uint64_t> cpu_ns{0};
};

/// Registers (or finds) a slot; slots live for the whole process, so the
/// returned pointer can be cached in static Counter objects.
CounterSlot* counter_slot(std::string_view name);
PhaseSlot* phase_slot(std::string_view name);

std::uint64_t wall_now_ns();
std::uint64_t thread_cpu_now_ns();

}  // namespace detail

/// True when observation is compiled in and not disabled by OPTO_OBS=0
/// (or set_enabled(false)). Cached after the first call.
bool enabled();

/// Test/driver override of the runtime switch (has no effect on code
/// compiled with OPTO_OBS_ENABLED=0, which never records).
void set_enabled(bool on);

/// A named monotonic counter. Construction registers the name once (takes
/// a lock); add() is a relaxed atomic increment behind the enabled()
/// flag, so it is safe and cheap to call from pool threads.
class Counter {
 public:
#if OPTO_OBS_ENABLED
  explicit Counter(std::string_view name)
      : slot_(detail::counter_slot(name)) {}

  void add(std::uint64_t n) {
    if (enabled()) slot_->value.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  detail::CounterSlot* slot_;
#else
  explicit Counter(std::string_view) {}
  void add(std::uint64_t) {}
#endif
};

/// Accumulates wall and thread-CPU time into a named phase for the
/// lifetime of the scope. Scopes nest freely: each named phase counts its
/// own full duration (an inner phase's time is also part of the outer
/// one, as in any inclusive profiler).
class ScopedTimer {
 public:
#if OPTO_OBS_ENABLED
  explicit ScopedTimer(std::string_view phase) {
    if (!enabled()) return;
    slot_ = detail::phase_slot(phase);
    wall_start_ = detail::wall_now_ns();
    cpu_start_ = detail::thread_cpu_now_ns();
  }

  ~ScopedTimer() {
    if (slot_ == nullptr) return;
    slot_->calls.fetch_add(1, std::memory_order_relaxed);
    slot_->wall_ns.fetch_add(detail::wall_now_ns() - wall_start_,
                             std::memory_order_relaxed);
    slot_->cpu_ns.fetch_add(detail::thread_cpu_now_ns() - cpu_start_,
                            std::memory_order_relaxed);
  }
#else
  explicit ScopedTimer(std::string_view) {}
#endif

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

#if OPTO_OBS_ENABLED
 private:
  detail::PhaseSlot* slot_ = nullptr;
  std::uint64_t wall_start_ = 0;
  std::uint64_t cpu_start_ = 0;
#endif
};

/// Free-form string note attached to the process snapshot (last write per
/// key wins). Used for run parameters that are not counts: base seed,
/// bench label, schedule name…
void annotate(std::string_view key, std::string_view value);

/// Named numeric gauge (last write per name wins). Unlike a Counter this
/// carries a computed value — a blocking probability, a latency quantile,
/// a sustained rate — and lands in the BenchRecord "metrics" object next
/// to the derived metrics, where the CI regression gate and
/// `bench_compare` read it. Name discipline follows compare.cpp's
/// normalization rules: deterministic model gauges get plain names;
/// wall-clock-dependent gauges must end in `_per_s` or contain `wall_ns`
/// so `--normalize` strips them.
void set_metric(std::string_view name, double value);

struct MetricSnapshot {
  std::string name;
  double value = 0.0;
};

/// Gauges set since the last reset(), sorted by name.
std::vector<MetricSnapshot> metrics();

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct PhaseSnapshot {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
};

/// Snapshots are sorted by name; counters/phases whose value is still
/// zero are included (a registered name is part of the schema).
std::vector<CounterSnapshot> counters();
std::vector<PhaseSnapshot> phases();
std::map<std::string, std::string> annotations();

/// Total calls to the replaced global operator new while observation was
/// enabled. 0 when compiled out.
std::uint64_t alloc_count();

/// Zeroes every counter, phase, annotation, and the allocation count.
/// Registered names survive. Test support only — records written after a
/// reset describe just the window since it.
void reset();

/// Wall-clock seconds since the process registered its first observation
/// (static init of the obs library).
double process_wall_seconds();

}  // namespace opto::obs
