# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--side" "4" "--length" "2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mesh_routing "/root/repo/build/examples/mesh_routing" "--side" "4" "--trials" "2")
set_tests_properties(example_mesh_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_butterfly_qrouting "/root/repo/build/examples/butterfly_qrouting" "--dim" "4" "--trials" "2")
set_tests_properties(example_butterfly_qrouting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversarial_structures "/root/repo/build/examples/adversarial_structures" "--length" "4")
set_tests_properties(example_adversarial_structures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_router_inspector "/root/repo/build/examples/router_inspector")
set_tests_properties(example_router_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_strategy_faceoff "/root/repo/build/examples/strategy_faceoff" "--side" "4" "--length" "4")
set_tests_properties(example_strategy_faceoff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optoroute_cli "/root/repo/build/examples/optoroute_cli" "--topology" "ring" "--size" "8" "--trials" "2")
set_tests_properties(example_optoroute_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gallery "/root/repo/build/examples/gallery" "--out" "/root/repo/build/examples/gallery_smoke")
set_tests_properties(example_gallery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_blocking_curve "/root/repo/build/examples/blocking_curve" "--size" "8" "--points" "2" "--arrivals" "3000")
set_tests_properties(example_blocking_curve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_layout_explorer "/root/repo/build/examples/layout_explorer" "--family" "mesh" "--size" "5" "--dst" "20")
set_tests_properties(example_layout_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
