file(REMOVE_RECURSE
  "CMakeFiles/blocking_curve.dir/blocking_curve.cpp.o"
  "CMakeFiles/blocking_curve.dir/blocking_curve.cpp.o.d"
  "blocking_curve"
  "blocking_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
