# Empty dependencies file for blocking_curve.
# This may be replaced when dependencies are built.
