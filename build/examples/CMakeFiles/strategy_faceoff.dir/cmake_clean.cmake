file(REMOVE_RECURSE
  "CMakeFiles/strategy_faceoff.dir/strategy_faceoff.cpp.o"
  "CMakeFiles/strategy_faceoff.dir/strategy_faceoff.cpp.o.d"
  "strategy_faceoff"
  "strategy_faceoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_faceoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
