# Empty compiler generated dependencies file for strategy_faceoff.
# This may be replaced when dependencies are built.
