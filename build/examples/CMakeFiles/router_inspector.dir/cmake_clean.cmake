file(REMOVE_RECURSE
  "CMakeFiles/router_inspector.dir/router_inspector.cpp.o"
  "CMakeFiles/router_inspector.dir/router_inspector.cpp.o.d"
  "router_inspector"
  "router_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
