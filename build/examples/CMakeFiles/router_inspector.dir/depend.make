# Empty dependencies file for router_inspector.
# This may be replaced when dependencies are built.
