file(REMOVE_RECURSE
  "CMakeFiles/mesh_routing.dir/mesh_routing.cpp.o"
  "CMakeFiles/mesh_routing.dir/mesh_routing.cpp.o.d"
  "mesh_routing"
  "mesh_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
