file(REMOVE_RECURSE
  "CMakeFiles/optoroute_cli.dir/optoroute_cli.cpp.o"
  "CMakeFiles/optoroute_cli.dir/optoroute_cli.cpp.o.d"
  "optoroute_cli"
  "optoroute_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optoroute_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
