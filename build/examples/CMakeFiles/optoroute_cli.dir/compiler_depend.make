# Empty compiler generated dependencies file for optoroute_cli.
# This may be replaced when dependencies are built.
