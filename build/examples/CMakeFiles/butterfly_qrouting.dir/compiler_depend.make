# Empty compiler generated dependencies file for butterfly_qrouting.
# This may be replaced when dependencies are built.
