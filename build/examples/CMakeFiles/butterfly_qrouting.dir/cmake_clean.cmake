file(REMOVE_RECURSE
  "CMakeFiles/butterfly_qrouting.dir/butterfly_qrouting.cpp.o"
  "CMakeFiles/butterfly_qrouting.dir/butterfly_qrouting.cpp.o.d"
  "butterfly_qrouting"
  "butterfly_qrouting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly_qrouting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
