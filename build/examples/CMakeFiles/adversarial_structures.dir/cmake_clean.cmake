file(REMOVE_RECURSE
  "CMakeFiles/adversarial_structures.dir/adversarial_structures.cpp.o"
  "CMakeFiles/adversarial_structures.dir/adversarial_structures.cpp.o.d"
  "adversarial_structures"
  "adversarial_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
