# Empty dependencies file for adversarial_structures.
# This may be replaced when dependencies are built.
