file(REMOVE_RECURSE
  "CMakeFiles/test_multi_hop_properties.dir/test_multi_hop_properties.cpp.o"
  "CMakeFiles/test_multi_hop_properties.dir/test_multi_hop_properties.cpp.o.d"
  "test_multi_hop_properties"
  "test_multi_hop_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_hop_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
