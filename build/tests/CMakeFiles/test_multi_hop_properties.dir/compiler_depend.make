# Empty compiler generated dependencies file for test_multi_hop_properties.
# This may be replaced when dependencies are built.
