file(REMOVE_RECURSE
  "CMakeFiles/test_witness_builder.dir/test_witness_builder.cpp.o"
  "CMakeFiles/test_witness_builder.dir/test_witness_builder.cpp.o.d"
  "test_witness_builder"
  "test_witness_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_witness_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
