file(REMOVE_RECURSE
  "CMakeFiles/test_result_json.dir/test_result_json.cpp.o"
  "CMakeFiles/test_result_json.dir/test_result_json.cpp.o.d"
  "test_result_json"
  "test_result_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_result_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
