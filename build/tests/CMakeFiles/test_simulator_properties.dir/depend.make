# Empty dependencies file for test_simulator_properties.
# This may be replaced when dependencies are built.
