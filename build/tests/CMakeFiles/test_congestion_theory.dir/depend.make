# Empty dependencies file for test_congestion_theory.
# This may be replaced when dependencies are built.
