file(REMOVE_RECURSE
  "CMakeFiles/test_congestion_theory.dir/test_congestion_theory.cpp.o"
  "CMakeFiles/test_congestion_theory.dir/test_congestion_theory.cpp.o.d"
  "test_congestion_theory"
  "test_congestion_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_congestion_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
