# Empty compiler generated dependencies file for test_expander.
# This may be replaced when dependencies are built.
