file(REMOVE_RECURSE
  "CMakeFiles/test_lightpath_layout.dir/test_lightpath_layout.cpp.o"
  "CMakeFiles/test_lightpath_layout.dir/test_lightpath_layout.cpp.o.d"
  "test_lightpath_layout"
  "test_lightpath_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lightpath_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
