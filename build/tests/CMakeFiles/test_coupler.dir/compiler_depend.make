# Empty compiler generated dependencies file for test_coupler.
# This may be replaced when dependencies are built.
