# Empty compiler generated dependencies file for test_analysis_bounds.
# This may be replaced when dependencies are built.
