file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_bounds.dir/test_analysis_bounds.cpp.o"
  "CMakeFiles/test_analysis_bounds.dir/test_analysis_bounds.cpp.o.d"
  "test_analysis_bounds"
  "test_analysis_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
