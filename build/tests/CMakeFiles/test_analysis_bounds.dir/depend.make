# Empty dependencies file for test_analysis_bounds.
# This may be replaced when dependencies are built.
