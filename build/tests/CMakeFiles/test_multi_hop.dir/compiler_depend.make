# Empty compiler generated dependencies file for test_multi_hop.
# This may be replaced when dependencies are built.
