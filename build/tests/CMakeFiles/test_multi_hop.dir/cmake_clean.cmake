file(REMOVE_RECURSE
  "CMakeFiles/test_multi_hop.dir/test_multi_hop.cpp.o"
  "CMakeFiles/test_multi_hop.dir/test_multi_hop.cpp.o.d"
  "test_multi_hop"
  "test_multi_hop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
