# Empty dependencies file for test_selectors.
# This may be replaced when dependencies are built.
