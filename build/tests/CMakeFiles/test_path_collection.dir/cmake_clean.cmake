file(REMOVE_RECURSE
  "CMakeFiles/test_path_collection.dir/test_path_collection.cpp.o"
  "CMakeFiles/test_path_collection.dir/test_path_collection.cpp.o.d"
  "test_path_collection"
  "test_path_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
