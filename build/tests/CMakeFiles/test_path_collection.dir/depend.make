# Empty dependencies file for test_path_collection.
# This may be replaced when dependencies are built.
