# Empty compiler generated dependencies file for test_shortcut_free.
# This may be replaced when dependencies are built.
