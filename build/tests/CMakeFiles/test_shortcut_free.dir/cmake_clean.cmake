file(REMOVE_RECURSE
  "CMakeFiles/test_shortcut_free.dir/test_shortcut_free.cpp.o"
  "CMakeFiles/test_shortcut_free.dir/test_shortcut_free.cpp.o.d"
  "test_shortcut_free"
  "test_shortcut_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shortcut_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
