file(REMOVE_RECURSE
  "CMakeFiles/test_witness_tree.dir/test_witness_tree.cpp.o"
  "CMakeFiles/test_witness_tree.dir/test_witness_tree.cpp.o.d"
  "test_witness_tree"
  "test_witness_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_witness_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
