# Empty dependencies file for test_witness_tree.
# This may be replaced when dependencies are built.
