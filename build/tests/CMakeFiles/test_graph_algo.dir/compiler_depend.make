# Empty compiler generated dependencies file for test_graph_algo.
# This may be replaced when dependencies are built.
