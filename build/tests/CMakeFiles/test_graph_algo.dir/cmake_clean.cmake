file(REMOVE_RECURSE
  "CMakeFiles/test_graph_algo.dir/test_graph_algo.cpp.o"
  "CMakeFiles/test_graph_algo.dir/test_graph_algo.cpp.o.d"
  "test_graph_algo"
  "test_graph_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
