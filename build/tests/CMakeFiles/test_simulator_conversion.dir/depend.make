# Empty dependencies file for test_simulator_conversion.
# This may be replaced when dependencies are built.
