file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_conversion.dir/test_simulator_conversion.cpp.o"
  "CMakeFiles/test_simulator_conversion.dir/test_simulator_conversion.cpp.o.d"
  "test_simulator_conversion"
  "test_simulator_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
