
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_occupancy.cpp" "tests/CMakeFiles/test_occupancy.dir/test_occupancy.cpp.o" "gcc" "tests/CMakeFiles/test_occupancy.dir/test_occupancy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/opto_benchsupport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_par.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
