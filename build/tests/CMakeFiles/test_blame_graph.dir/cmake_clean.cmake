file(REMOVE_RECURSE
  "CMakeFiles/test_blame_graph.dir/test_blame_graph.cpp.o"
  "CMakeFiles/test_blame_graph.dir/test_blame_graph.cpp.o.d"
  "test_blame_graph"
  "test_blame_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blame_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
