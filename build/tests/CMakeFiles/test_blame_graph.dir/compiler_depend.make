# Empty compiler generated dependencies file for test_blame_graph.
# This may be replaced when dependencies are built.
