file(REMOVE_RECURSE
  "CMakeFiles/test_static_wdm.dir/test_static_wdm.cpp.o"
  "CMakeFiles/test_static_wdm.dir/test_static_wdm.cpp.o.d"
  "test_static_wdm"
  "test_static_wdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_wdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
