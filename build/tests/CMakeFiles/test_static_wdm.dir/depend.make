# Empty dependencies file for test_static_wdm.
# This may be replaced when dependencies are built.
