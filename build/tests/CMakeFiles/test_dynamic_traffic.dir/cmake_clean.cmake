file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_traffic.dir/test_dynamic_traffic.cpp.o"
  "CMakeFiles/test_dynamic_traffic.dir/test_dynamic_traffic.cpp.o.d"
  "test_dynamic_traffic"
  "test_dynamic_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
