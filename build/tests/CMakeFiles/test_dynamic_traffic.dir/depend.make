# Empty dependencies file for test_dynamic_traffic.
# This may be replaced when dependencies are built.
