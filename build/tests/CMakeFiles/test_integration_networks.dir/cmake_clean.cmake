file(REMOVE_RECURSE
  "CMakeFiles/test_integration_networks.dir/test_integration_networks.cpp.o"
  "CMakeFiles/test_integration_networks.dir/test_integration_networks.cpp.o.d"
  "test_integration_networks"
  "test_integration_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
