# Empty dependencies file for test_integration_networks.
# This may be replaced when dependencies are built.
