# Empty compiler generated dependencies file for test_integration_structures.
# This may be replaced when dependencies are built.
