file(REMOVE_RECURSE
  "CMakeFiles/test_integration_structures.dir/test_integration_structures.cpp.o"
  "CMakeFiles/test_integration_structures.dir/test_integration_structures.cpp.o.d"
  "test_integration_structures"
  "test_integration_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
