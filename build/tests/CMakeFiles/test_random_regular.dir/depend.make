# Empty dependencies file for test_random_regular.
# This may be replaced when dependencies are built.
