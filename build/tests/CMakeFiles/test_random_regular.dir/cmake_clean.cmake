file(REMOVE_RECURSE
  "CMakeFiles/test_random_regular.dir/test_random_regular.cpp.o"
  "CMakeFiles/test_random_regular.dir/test_random_regular.cpp.o.d"
  "test_random_regular"
  "test_random_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
