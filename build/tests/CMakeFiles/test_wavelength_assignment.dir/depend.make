# Empty dependencies file for test_wavelength_assignment.
# This may be replaced when dependencies are built.
