file(REMOVE_RECURSE
  "CMakeFiles/test_wavelength_assignment.dir/test_wavelength_assignment.cpp.o"
  "CMakeFiles/test_wavelength_assignment.dir/test_wavelength_assignment.cpp.o.d"
  "test_wavelength_assignment"
  "test_wavelength_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wavelength_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
