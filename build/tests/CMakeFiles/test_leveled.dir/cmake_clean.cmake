file(REMOVE_RECURSE
  "CMakeFiles/test_leveled.dir/test_leveled.cpp.o"
  "CMakeFiles/test_leveled.dir/test_leveled.cpp.o.d"
  "test_leveled"
  "test_leveled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leveled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
