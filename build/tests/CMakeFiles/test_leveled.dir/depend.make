# Empty dependencies file for test_leveled.
# This may be replaced when dependencies are built.
