# Empty compiler generated dependencies file for test_graph_builders.
# This may be replaced when dependencies are built.
