file(REMOVE_RECURSE
  "CMakeFiles/test_graph_builders.dir/test_graph_builders.cpp.o"
  "CMakeFiles/test_graph_builders.dir/test_graph_builders.cpp.o.d"
  "test_graph_builders"
  "test_graph_builders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
