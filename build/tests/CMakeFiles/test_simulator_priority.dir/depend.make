# Empty dependencies file for test_simulator_priority.
# This may be replaced when dependencies are built.
