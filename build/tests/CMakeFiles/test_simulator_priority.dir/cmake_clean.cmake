file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_priority.dir/test_simulator_priority.cpp.o"
  "CMakeFiles/test_simulator_priority.dir/test_simulator_priority.cpp.o.d"
  "test_simulator_priority"
  "test_simulator_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
