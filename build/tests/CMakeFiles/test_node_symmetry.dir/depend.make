# Empty dependencies file for test_node_symmetry.
# This may be replaced when dependencies are built.
