file(REMOVE_RECURSE
  "CMakeFiles/test_node_symmetry.dir/test_node_symmetry.cpp.o"
  "CMakeFiles/test_node_symmetry.dir/test_node_symmetry.cpp.o.d"
  "test_node_symmetry"
  "test_node_symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
