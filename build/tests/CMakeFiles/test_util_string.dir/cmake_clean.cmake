file(REMOVE_RECURSE
  "CMakeFiles/test_util_string.dir/test_util_string.cpp.o"
  "CMakeFiles/test_util_string.dir/test_util_string.cpp.o.d"
  "test_util_string"
  "test_util_string.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_string.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
