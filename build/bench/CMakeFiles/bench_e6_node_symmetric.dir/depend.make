# Empty dependencies file for bench_e6_node_symmetric.
# This may be replaced when dependencies are built.
