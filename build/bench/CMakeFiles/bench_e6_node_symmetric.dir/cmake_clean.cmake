file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_node_symmetric.dir/bench_e6_node_symmetric.cpp.o"
  "CMakeFiles/bench_e6_node_symmetric.dir/bench_e6_node_symmetric.cpp.o.d"
  "bench_e6_node_symmetric"
  "bench_e6_node_symmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_node_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
