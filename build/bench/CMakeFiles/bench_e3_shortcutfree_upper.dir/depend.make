# Empty dependencies file for bench_e3_shortcutfree_upper.
# This may be replaced when dependencies are built.
