file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_adaptive_schedule.dir/bench_a7_adaptive_schedule.cpp.o"
  "CMakeFiles/bench_a7_adaptive_schedule.dir/bench_a7_adaptive_schedule.cpp.o.d"
  "bench_a7_adaptive_schedule"
  "bench_a7_adaptive_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_adaptive_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
