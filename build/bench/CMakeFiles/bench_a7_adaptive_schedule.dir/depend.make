# Empty dependencies file for bench_a7_adaptive_schedule.
# This may be replaced when dependencies are built.
