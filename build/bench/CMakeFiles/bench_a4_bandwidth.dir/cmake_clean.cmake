file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_bandwidth.dir/bench_a4_bandwidth.cpp.o"
  "CMakeFiles/bench_a4_bandwidth.dir/bench_a4_bandwidth.cpp.o.d"
  "bench_a4_bandwidth"
  "bench_a4_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
