# Empty dependencies file for bench_a4_bandwidth.
# This may be replaced when dependencies are built.
