file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_triangle_lower.dir/bench_e4_triangle_lower.cpp.o"
  "CMakeFiles/bench_e4_triangle_lower.dir/bench_e4_triangle_lower.cpp.o.d"
  "bench_e4_triangle_lower"
  "bench_e4_triangle_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_triangle_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
