# Empty compiler generated dependencies file for bench_e4_triangle_lower.
# This may be replaced when dependencies are built.
