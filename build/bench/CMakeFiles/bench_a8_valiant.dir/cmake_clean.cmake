file(REMOVE_RECURSE
  "CMakeFiles/bench_a8_valiant.dir/bench_a8_valiant.cpp.o"
  "CMakeFiles/bench_a8_valiant.dir/bench_a8_valiant.cpp.o.d"
  "bench_a8_valiant"
  "bench_a8_valiant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a8_valiant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
