# Empty compiler generated dependencies file for bench_a5_tie_policy.
# This may be replaced when dependencies are built.
