# Empty dependencies file for bench_a1_delta_schedule.
# This may be replaced when dependencies are built.
