file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_delta_schedule.dir/bench_a1_delta_schedule.cpp.o"
  "CMakeFiles/bench_a1_delta_schedule.dir/bench_a1_delta_schedule.cpp.o.d"
  "bench_a1_delta_schedule"
  "bench_a1_delta_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_delta_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
