# Empty compiler generated dependencies file for bench_e13_layout_tradeoff.
# This may be replaced when dependencies are built.
