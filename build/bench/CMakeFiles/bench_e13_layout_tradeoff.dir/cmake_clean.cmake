file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_layout_tradeoff.dir/bench_e13_layout_tradeoff.cpp.o"
  "CMakeFiles/bench_e13_layout_tradeoff.dir/bench_e13_layout_tradeoff.cpp.o.d"
  "bench_e13_layout_tradeoff"
  "bench_e13_layout_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_layout_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
