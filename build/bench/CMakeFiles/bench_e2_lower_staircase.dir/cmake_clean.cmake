file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_lower_staircase.dir/bench_e2_lower_staircase.cpp.o"
  "CMakeFiles/bench_e2_lower_staircase.dir/bench_e2_lower_staircase.cpp.o.d"
  "bench_e2_lower_staircase"
  "bench_e2_lower_staircase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_lower_staircase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
