# Empty dependencies file for bench_a6_witness_trees.
# This may be replaced when dependencies are built.
