file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_witness_trees.dir/bench_a6_witness_trees.cpp.o"
  "CMakeFiles/bench_a6_witness_trees.dir/bench_a6_witness_trees.cpp.o.d"
  "bench_a6_witness_trees"
  "bench_a6_witness_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_witness_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
