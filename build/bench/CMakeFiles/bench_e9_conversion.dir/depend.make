# Empty dependencies file for bench_e9_conversion.
# This may be replaced when dependencies are built.
