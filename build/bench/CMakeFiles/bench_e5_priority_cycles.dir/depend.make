# Empty dependencies file for bench_e5_priority_cycles.
# This may be replaced when dependencies are built.
