file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_priority_cycles.dir/bench_e5_priority_cycles.cpp.o"
  "CMakeFiles/bench_e5_priority_cycles.dir/bench_e5_priority_cycles.cpp.o.d"
  "bench_e5_priority_cycles"
  "bench_e5_priority_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_priority_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
