# Empty compiler generated dependencies file for bench_e12_sparse_converters.
# This may be replaced when dependencies are built.
