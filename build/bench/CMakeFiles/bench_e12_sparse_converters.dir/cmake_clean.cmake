file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_sparse_converters.dir/bench_e12_sparse_converters.cpp.o"
  "CMakeFiles/bench_e12_sparse_converters.dir/bench_e12_sparse_converters.cpp.o.d"
  "bench_e12_sparse_converters"
  "bench_e12_sparse_converters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_sparse_converters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
