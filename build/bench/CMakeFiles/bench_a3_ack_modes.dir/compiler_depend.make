# Empty compiler generated dependencies file for bench_a3_ack_modes.
# This may be replaced when dependencies are built.
