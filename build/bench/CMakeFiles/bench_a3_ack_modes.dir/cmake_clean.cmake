file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_ack_modes.dir/bench_a3_ack_modes.cpp.o"
  "CMakeFiles/bench_a3_ack_modes.dir/bench_a3_ack_modes.cpp.o.d"
  "bench_a3_ack_modes"
  "bench_a3_ack_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_ack_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
