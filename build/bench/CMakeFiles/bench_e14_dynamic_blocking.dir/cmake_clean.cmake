file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_dynamic_blocking.dir/bench_e14_dynamic_blocking.cpp.o"
  "CMakeFiles/bench_e14_dynamic_blocking.dir/bench_e14_dynamic_blocking.cpp.o.d"
  "bench_e14_dynamic_blocking"
  "bench_e14_dynamic_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_dynamic_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
