# Empty dependencies file for bench_e14_dynamic_blocking.
# This may be replaced when dependencies are built.
