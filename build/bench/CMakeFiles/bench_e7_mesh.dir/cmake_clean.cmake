file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_mesh.dir/bench_e7_mesh.cpp.o"
  "CMakeFiles/bench_e7_mesh.dir/bench_e7_mesh.cpp.o.d"
  "bench_e7_mesh"
  "bench_e7_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
