file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_butterfly_qfn.dir/bench_e8_butterfly_qfn.cpp.o"
  "CMakeFiles/bench_e8_butterfly_qfn.dir/bench_e8_butterfly_qfn.cpp.o.d"
  "bench_e8_butterfly_qfn"
  "bench_e8_butterfly_qfn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_butterfly_qfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
