# Empty compiler generated dependencies file for bench_e8_butterfly_qfn.
# This may be replaced when dependencies are built.
