file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_static_wdm.dir/bench_e10_static_wdm.cpp.o"
  "CMakeFiles/bench_e10_static_wdm.dir/bench_e10_static_wdm.cpp.o.d"
  "bench_e10_static_wdm"
  "bench_e10_static_wdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_static_wdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
