# Empty dependencies file for bench_e10_static_wdm.
# This may be replaced when dependencies are built.
