# Empty dependencies file for bench_e11_multihop.
# This may be replaced when dependencies are built.
