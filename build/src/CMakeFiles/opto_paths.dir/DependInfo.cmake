
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opto/paths/bfs_shortest.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/bfs_shortest.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/bfs_shortest.cpp.o.d"
  "/root/repo/src/opto/paths/butterfly_paths.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/butterfly_paths.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/butterfly_paths.cpp.o.d"
  "/root/repo/src/opto/paths/dimension_order.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/dimension_order.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/dimension_order.cpp.o.d"
  "/root/repo/src/opto/paths/dot_export.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/dot_export.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/dot_export.cpp.o.d"
  "/root/repo/src/opto/paths/leveled.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/leveled.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/leveled.cpp.o.d"
  "/root/repo/src/opto/paths/lightpath_layout.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/lightpath_layout.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/lightpath_layout.cpp.o.d"
  "/root/repo/src/opto/paths/lowerbound_structures.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/lowerbound_structures.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/lowerbound_structures.cpp.o.d"
  "/root/repo/src/opto/paths/path.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/path.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/path.cpp.o.d"
  "/root/repo/src/opto/paths/path_collection.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/path_collection.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/path_collection.cpp.o.d"
  "/root/repo/src/opto/paths/shortcut_free.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/shortcut_free.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/shortcut_free.cpp.o.d"
  "/root/repo/src/opto/paths/tree_layout.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/tree_layout.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/tree_layout.cpp.o.d"
  "/root/repo/src/opto/paths/valiant.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/valiant.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/valiant.cpp.o.d"
  "/root/repo/src/opto/paths/wavelength_assignment.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/wavelength_assignment.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/wavelength_assignment.cpp.o.d"
  "/root/repo/src/opto/paths/workloads.cpp" "src/CMakeFiles/opto_paths.dir/opto/paths/workloads.cpp.o" "gcc" "src/CMakeFiles/opto_paths.dir/opto/paths/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/opto_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
