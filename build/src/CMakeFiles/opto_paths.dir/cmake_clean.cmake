file(REMOVE_RECURSE
  "CMakeFiles/opto_paths.dir/opto/paths/bfs_shortest.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/bfs_shortest.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/butterfly_paths.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/butterfly_paths.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/dimension_order.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/dimension_order.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/dot_export.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/dot_export.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/leveled.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/leveled.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/lightpath_layout.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/lightpath_layout.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/lowerbound_structures.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/lowerbound_structures.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/path.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/path.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/path_collection.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/path_collection.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/shortcut_free.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/shortcut_free.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/tree_layout.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/tree_layout.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/valiant.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/valiant.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/wavelength_assignment.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/wavelength_assignment.cpp.o.d"
  "CMakeFiles/opto_paths.dir/opto/paths/workloads.cpp.o"
  "CMakeFiles/opto_paths.dir/opto/paths/workloads.cpp.o.d"
  "libopto_paths.a"
  "libopto_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
