# Empty compiler generated dependencies file for opto_paths.
# This may be replaced when dependencies are built.
