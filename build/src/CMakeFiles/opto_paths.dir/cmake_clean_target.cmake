file(REMOVE_RECURSE
  "libopto_paths.a"
)
