file(REMOVE_RECURSE
  "libopto_graph.a"
)
