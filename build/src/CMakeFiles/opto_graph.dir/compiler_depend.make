# Empty compiler generated dependencies file for opto_graph.
# This may be replaced when dependencies are built.
