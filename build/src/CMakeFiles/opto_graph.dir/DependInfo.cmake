
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opto/graph/butterfly.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/butterfly.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/butterfly.cpp.o.d"
  "/root/repo/src/opto/graph/complete.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/complete.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/complete.cpp.o.d"
  "/root/repo/src/opto/graph/debruijn.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/debruijn.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/debruijn.cpp.o.d"
  "/root/repo/src/opto/graph/expander.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/expander.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/expander.cpp.o.d"
  "/root/repo/src/opto/graph/graph.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/graph.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/graph.cpp.o.d"
  "/root/repo/src/opto/graph/graph_algo.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/graph_algo.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/graph_algo.cpp.o.d"
  "/root/repo/src/opto/graph/hypercube.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/hypercube.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/hypercube.cpp.o.d"
  "/root/repo/src/opto/graph/mesh.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/mesh.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/mesh.cpp.o.d"
  "/root/repo/src/opto/graph/node_symmetry.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/node_symmetry.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/node_symmetry.cpp.o.d"
  "/root/repo/src/opto/graph/random_regular.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/random_regular.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/random_regular.cpp.o.d"
  "/root/repo/src/opto/graph/ring.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/ring.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/ring.cpp.o.d"
  "/root/repo/src/opto/graph/shuffle_exchange.cpp" "src/CMakeFiles/opto_graph.dir/opto/graph/shuffle_exchange.cpp.o" "gcc" "src/CMakeFiles/opto_graph.dir/opto/graph/shuffle_exchange.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/opto_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
