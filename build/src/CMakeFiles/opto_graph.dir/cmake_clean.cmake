file(REMOVE_RECURSE
  "CMakeFiles/opto_graph.dir/opto/graph/butterfly.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/butterfly.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/complete.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/complete.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/debruijn.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/debruijn.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/expander.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/expander.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/graph.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/graph.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/graph_algo.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/graph_algo.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/hypercube.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/hypercube.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/mesh.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/mesh.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/node_symmetry.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/node_symmetry.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/random_regular.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/random_regular.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/ring.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/ring.cpp.o.d"
  "CMakeFiles/opto_graph.dir/opto/graph/shuffle_exchange.cpp.o"
  "CMakeFiles/opto_graph.dir/opto/graph/shuffle_exchange.cpp.o.d"
  "libopto_graph.a"
  "libopto_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
