file(REMOVE_RECURSE
  "CMakeFiles/opto_par.dir/opto/par/parallel_for.cpp.o"
  "CMakeFiles/opto_par.dir/opto/par/parallel_for.cpp.o.d"
  "CMakeFiles/opto_par.dir/opto/par/thread_pool.cpp.o"
  "CMakeFiles/opto_par.dir/opto/par/thread_pool.cpp.o.d"
  "libopto_par.a"
  "libopto_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
