file(REMOVE_RECURSE
  "libopto_par.a"
)
