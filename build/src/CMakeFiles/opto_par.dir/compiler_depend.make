# Empty compiler generated dependencies file for opto_par.
# This may be replaced when dependencies are built.
