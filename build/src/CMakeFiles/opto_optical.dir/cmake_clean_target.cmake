file(REMOVE_RECURSE
  "libopto_optical.a"
)
