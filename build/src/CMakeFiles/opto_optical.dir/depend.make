# Empty dependencies file for opto_optical.
# This may be replaced when dependencies are built.
