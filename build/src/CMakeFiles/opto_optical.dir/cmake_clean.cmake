file(REMOVE_RECURSE
  "CMakeFiles/opto_optical.dir/opto/optical/coupler.cpp.o"
  "CMakeFiles/opto_optical.dir/opto/optical/coupler.cpp.o.d"
  "CMakeFiles/opto_optical.dir/opto/optical/router.cpp.o"
  "CMakeFiles/opto_optical.dir/opto/optical/router.cpp.o.d"
  "CMakeFiles/opto_optical.dir/opto/optical/worm.cpp.o"
  "CMakeFiles/opto_optical.dir/opto/optical/worm.cpp.o.d"
  "libopto_optical.a"
  "libopto_optical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_optical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
