# Empty dependencies file for opto_benchsupport.
# This may be replaced when dependencies are built.
