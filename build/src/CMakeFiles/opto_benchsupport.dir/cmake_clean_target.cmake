file(REMOVE_RECURSE
  "libopto_benchsupport.a"
)
