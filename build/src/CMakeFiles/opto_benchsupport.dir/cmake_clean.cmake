file(REMOVE_RECURSE
  "CMakeFiles/opto_benchsupport.dir/opto/benchsupport/experiment.cpp.o"
  "CMakeFiles/opto_benchsupport.dir/opto/benchsupport/experiment.cpp.o.d"
  "libopto_benchsupport.a"
  "libopto_benchsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
