# Empty compiler generated dependencies file for opto_analysis.
# This may be replaced when dependencies are built.
