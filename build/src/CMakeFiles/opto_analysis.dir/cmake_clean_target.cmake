file(REMOVE_RECURSE
  "libopto_analysis.a"
)
