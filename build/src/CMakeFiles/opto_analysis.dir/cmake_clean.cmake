file(REMOVE_RECURSE
  "CMakeFiles/opto_analysis.dir/opto/analysis/blame_graph.cpp.o"
  "CMakeFiles/opto_analysis.dir/opto/analysis/blame_graph.cpp.o.d"
  "CMakeFiles/opto_analysis.dir/opto/analysis/bounds.cpp.o"
  "CMakeFiles/opto_analysis.dir/opto/analysis/bounds.cpp.o.d"
  "CMakeFiles/opto_analysis.dir/opto/analysis/congestion_theory.cpp.o"
  "CMakeFiles/opto_analysis.dir/opto/analysis/congestion_theory.cpp.o.d"
  "CMakeFiles/opto_analysis.dir/opto/analysis/witness_builder.cpp.o"
  "CMakeFiles/opto_analysis.dir/opto/analysis/witness_builder.cpp.o.d"
  "CMakeFiles/opto_analysis.dir/opto/analysis/witness_tree.cpp.o"
  "CMakeFiles/opto_analysis.dir/opto/analysis/witness_tree.cpp.o.d"
  "libopto_analysis.a"
  "libopto_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
