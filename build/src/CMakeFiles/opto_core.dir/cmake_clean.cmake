file(REMOVE_RECURSE
  "CMakeFiles/opto_core.dir/opto/core/dynamic_traffic.cpp.o"
  "CMakeFiles/opto_core.dir/opto/core/dynamic_traffic.cpp.o.d"
  "CMakeFiles/opto_core.dir/opto/core/multi_hop.cpp.o"
  "CMakeFiles/opto_core.dir/opto/core/multi_hop.cpp.o.d"
  "CMakeFiles/opto_core.dir/opto/core/priority_assign.cpp.o"
  "CMakeFiles/opto_core.dir/opto/core/priority_assign.cpp.o.d"
  "CMakeFiles/opto_core.dir/opto/core/result_json.cpp.o"
  "CMakeFiles/opto_core.dir/opto/core/result_json.cpp.o.d"
  "CMakeFiles/opto_core.dir/opto/core/schedule.cpp.o"
  "CMakeFiles/opto_core.dir/opto/core/schedule.cpp.o.d"
  "CMakeFiles/opto_core.dir/opto/core/static_wdm.cpp.o"
  "CMakeFiles/opto_core.dir/opto/core/static_wdm.cpp.o.d"
  "CMakeFiles/opto_core.dir/opto/core/trial_and_failure.cpp.o"
  "CMakeFiles/opto_core.dir/opto/core/trial_and_failure.cpp.o.d"
  "libopto_core.a"
  "libopto_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
