
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opto/core/dynamic_traffic.cpp" "src/CMakeFiles/opto_core.dir/opto/core/dynamic_traffic.cpp.o" "gcc" "src/CMakeFiles/opto_core.dir/opto/core/dynamic_traffic.cpp.o.d"
  "/root/repo/src/opto/core/multi_hop.cpp" "src/CMakeFiles/opto_core.dir/opto/core/multi_hop.cpp.o" "gcc" "src/CMakeFiles/opto_core.dir/opto/core/multi_hop.cpp.o.d"
  "/root/repo/src/opto/core/priority_assign.cpp" "src/CMakeFiles/opto_core.dir/opto/core/priority_assign.cpp.o" "gcc" "src/CMakeFiles/opto_core.dir/opto/core/priority_assign.cpp.o.d"
  "/root/repo/src/opto/core/result_json.cpp" "src/CMakeFiles/opto_core.dir/opto/core/result_json.cpp.o" "gcc" "src/CMakeFiles/opto_core.dir/opto/core/result_json.cpp.o.d"
  "/root/repo/src/opto/core/schedule.cpp" "src/CMakeFiles/opto_core.dir/opto/core/schedule.cpp.o" "gcc" "src/CMakeFiles/opto_core.dir/opto/core/schedule.cpp.o.d"
  "/root/repo/src/opto/core/static_wdm.cpp" "src/CMakeFiles/opto_core.dir/opto/core/static_wdm.cpp.o" "gcc" "src/CMakeFiles/opto_core.dir/opto/core/static_wdm.cpp.o.d"
  "/root/repo/src/opto/core/trial_and_failure.cpp" "src/CMakeFiles/opto_core.dir/opto/core/trial_and_failure.cpp.o" "gcc" "src/CMakeFiles/opto_core.dir/opto/core/trial_and_failure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/opto_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
