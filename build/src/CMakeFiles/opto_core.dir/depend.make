# Empty dependencies file for opto_core.
# This may be replaced when dependencies are built.
