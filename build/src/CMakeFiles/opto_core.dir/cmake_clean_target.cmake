file(REMOVE_RECURSE
  "libopto_core.a"
)
