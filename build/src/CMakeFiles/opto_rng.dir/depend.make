# Empty dependencies file for opto_rng.
# This may be replaced when dependencies are built.
