file(REMOVE_RECURSE
  "libopto_rng.a"
)
