file(REMOVE_RECURSE
  "CMakeFiles/opto_rng.dir/opto/rng/rng.cpp.o"
  "CMakeFiles/opto_rng.dir/opto/rng/rng.cpp.o.d"
  "libopto_rng.a"
  "libopto_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
