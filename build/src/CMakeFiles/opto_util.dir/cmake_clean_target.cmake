file(REMOVE_RECURSE
  "libopto_util.a"
)
