file(REMOVE_RECURSE
  "CMakeFiles/opto_util.dir/opto/util/cli.cpp.o"
  "CMakeFiles/opto_util.dir/opto/util/cli.cpp.o.d"
  "CMakeFiles/opto_util.dir/opto/util/json.cpp.o"
  "CMakeFiles/opto_util.dir/opto/util/json.cpp.o.d"
  "CMakeFiles/opto_util.dir/opto/util/logging.cpp.o"
  "CMakeFiles/opto_util.dir/opto/util/logging.cpp.o.d"
  "CMakeFiles/opto_util.dir/opto/util/stats.cpp.o"
  "CMakeFiles/opto_util.dir/opto/util/stats.cpp.o.d"
  "CMakeFiles/opto_util.dir/opto/util/string_util.cpp.o"
  "CMakeFiles/opto_util.dir/opto/util/string_util.cpp.o.d"
  "CMakeFiles/opto_util.dir/opto/util/table.cpp.o"
  "CMakeFiles/opto_util.dir/opto/util/table.cpp.o.d"
  "libopto_util.a"
  "libopto_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
