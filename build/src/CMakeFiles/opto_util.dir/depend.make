# Empty dependencies file for opto_util.
# This may be replaced when dependencies are built.
