
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opto/util/cli.cpp" "src/CMakeFiles/opto_util.dir/opto/util/cli.cpp.o" "gcc" "src/CMakeFiles/opto_util.dir/opto/util/cli.cpp.o.d"
  "/root/repo/src/opto/util/json.cpp" "src/CMakeFiles/opto_util.dir/opto/util/json.cpp.o" "gcc" "src/CMakeFiles/opto_util.dir/opto/util/json.cpp.o.d"
  "/root/repo/src/opto/util/logging.cpp" "src/CMakeFiles/opto_util.dir/opto/util/logging.cpp.o" "gcc" "src/CMakeFiles/opto_util.dir/opto/util/logging.cpp.o.d"
  "/root/repo/src/opto/util/stats.cpp" "src/CMakeFiles/opto_util.dir/opto/util/stats.cpp.o" "gcc" "src/CMakeFiles/opto_util.dir/opto/util/stats.cpp.o.d"
  "/root/repo/src/opto/util/string_util.cpp" "src/CMakeFiles/opto_util.dir/opto/util/string_util.cpp.o" "gcc" "src/CMakeFiles/opto_util.dir/opto/util/string_util.cpp.o.d"
  "/root/repo/src/opto/util/table.cpp" "src/CMakeFiles/opto_util.dir/opto/util/table.cpp.o" "gcc" "src/CMakeFiles/opto_util.dir/opto/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
