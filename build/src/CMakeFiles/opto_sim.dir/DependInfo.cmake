
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opto/sim/metrics.cpp" "src/CMakeFiles/opto_sim.dir/opto/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/opto_sim.dir/opto/sim/metrics.cpp.o.d"
  "/root/repo/src/opto/sim/occupancy.cpp" "src/CMakeFiles/opto_sim.dir/opto/sim/occupancy.cpp.o" "gcc" "src/CMakeFiles/opto_sim.dir/opto/sim/occupancy.cpp.o.d"
  "/root/repo/src/opto/sim/reference.cpp" "src/CMakeFiles/opto_sim.dir/opto/sim/reference.cpp.o" "gcc" "src/CMakeFiles/opto_sim.dir/opto/sim/reference.cpp.o.d"
  "/root/repo/src/opto/sim/simulator.cpp" "src/CMakeFiles/opto_sim.dir/opto/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/opto_sim.dir/opto/sim/simulator.cpp.o.d"
  "/root/repo/src/opto/sim/trace.cpp" "src/CMakeFiles/opto_sim.dir/opto/sim/trace.cpp.o" "gcc" "src/CMakeFiles/opto_sim.dir/opto/sim/trace.cpp.o.d"
  "/root/repo/src/opto/sim/validate.cpp" "src/CMakeFiles/opto_sim.dir/opto/sim/validate.cpp.o" "gcc" "src/CMakeFiles/opto_sim.dir/opto/sim/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/opto_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/opto_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
