# Empty dependencies file for opto_sim.
# This may be replaced when dependencies are built.
