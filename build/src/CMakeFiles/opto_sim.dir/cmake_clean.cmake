file(REMOVE_RECURSE
  "CMakeFiles/opto_sim.dir/opto/sim/metrics.cpp.o"
  "CMakeFiles/opto_sim.dir/opto/sim/metrics.cpp.o.d"
  "CMakeFiles/opto_sim.dir/opto/sim/occupancy.cpp.o"
  "CMakeFiles/opto_sim.dir/opto/sim/occupancy.cpp.o.d"
  "CMakeFiles/opto_sim.dir/opto/sim/reference.cpp.o"
  "CMakeFiles/opto_sim.dir/opto/sim/reference.cpp.o.d"
  "CMakeFiles/opto_sim.dir/opto/sim/simulator.cpp.o"
  "CMakeFiles/opto_sim.dir/opto/sim/simulator.cpp.o.d"
  "CMakeFiles/opto_sim.dir/opto/sim/trace.cpp.o"
  "CMakeFiles/opto_sim.dir/opto/sim/trace.cpp.o.d"
  "CMakeFiles/opto_sim.dir/opto/sim/validate.cpp.o"
  "CMakeFiles/opto_sim.dir/opto/sim/validate.cpp.o.d"
  "libopto_sim.a"
  "libopto_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opto_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
