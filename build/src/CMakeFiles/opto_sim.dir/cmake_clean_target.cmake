file(REMOVE_RECURSE
  "libopto_sim.a"
)
