#!/usr/bin/env bash
# Streaming-engine soak wrapper for nightly CI and local runs:
#
#   scripts/run_engine_soak.sh [--arrivals N] [--rss-limit-mb M]
#                              [--build-dir DIR]
#
#   --arrivals N      arrivals per load point (default 100000; the
#                     engine is O(active connections) in memory, so
#                     millions only cost time)
#   --rss-limit-mb M  VmHWM ceiling passed to the soak tool
#                     (default 512)
#   --build-dir DIR   where the binaries live (default: build)
#
# The checks themselves (accounting closure, blocking monotone in load,
# connection table bounded by active circuits, RSS under the limit) live
# in tools/engine_soak.cpp; a failed check exits non-zero and fails the
# job.
set -euo pipefail

cd "$(dirname "$0")/.."

ARRIVALS=100000
RSS_LIMIT=512
BUILD=build
while [ $# -gt 0 ]; do
  case "$1" in
    --arrivals)     ARRIVALS="$2"; shift 2 ;;
    --rss-limit-mb) RSS_LIMIT="$2"; shift 2 ;;
    --build-dir)    BUILD="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [ ! -x "$BUILD/tools/engine_soak" ]; then
  echo "$BUILD/tools/engine_soak not found — build the project first" >&2
  exit 1
fi

exec "$BUILD/tools/engine_soak" --arrivals "$ARRIVALS" \
  --rss-limit-mb "$RSS_LIMIT" --rates 8,32,128
