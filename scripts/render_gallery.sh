#!/usr/bin/env bash
# Renders the DOT gallery (requires graphviz's `dot` on PATH).
#
#   scripts/render_gallery.sh [out-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-gallery}"

if [ ! -x build/examples/gallery ]; then
  echo "build/examples/gallery not found — build the project first" >&2
  exit 1
fi

build/examples/gallery --out "$OUT"

if command -v dot >/dev/null; then
  for f in "$OUT"/*.dot; do
    dot -Tsvg "$f" -o "${f%.dot}.svg"
    echo "rendered ${f%.dot}.svg"
  done
else
  echo "graphviz 'dot' not found; .dot files written to $OUT/ unrendered"
fi
