#!/usr/bin/env bash
# Runs the representative perf benches with the observability layer on
# and rolls their BenchRecords into one machine-readable suite file:
#
#   scripts/run_perf_suite.sh [--scale S] [--label L] [--out DIR]
#                             [--build-dir DIR]
#
#   --scale S      REPRO_SCALE for the experiment benches (default 1)
#   --label L      suite label; output is DIR/BENCH_<L>.json
#                  (default: perf)
#   --out DIR      output directory (default: perf-results)
#   --build-dir D  where the binaries live (default: build)
#
# Per-bench records land in DIR/records/benchrecord_<bench>.json; the
# roll-up DIR/BENCH_<label>.json is what CI uploads and what
# tools/bench_compare diffs against bench/baselines/.
set -euo pipefail

cd "$(dirname "$0")/.."

SCALE=1
LABEL=perf
OUT=perf-results
BUILD=build
while [ $# -gt 0 ]; do
  case "$1" in
    --scale)     SCALE="$2"; shift 2 ;;
    --label)     LABEL="$2"; shift 2 ;;
    --out)       OUT="$2"; shift 2 ;;
    --build-dir) BUILD="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [ ! -x "$BUILD/tools/bench_compare" ]; then
  echo "$BUILD/tools/bench_compare not found — build the project first" >&2
  exit 1
fi

RECORDS="$OUT/records"
mkdir -p "$RECORDS"

# Stamp records with the commit they measured. Harmless fallback when
# run outside a checkout.
OPTO_GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
export OPTO_GIT_SHA
export OPTO_RESULTS_DIR="$RECORDS"
export REPRO_SCALE="$SCALE"

# Provenance up front: the runtime lane cap in effect for this run. The
# *active* level (after the CPU probe) is reported from the records below
# and stamped into every BenchRecord's env block as env.simd / env.rng.
echo "== perf suite: OPTO_SIMD=${OPTO_SIMD:-unset (no cap)} =="

# Representative slice of the suite: a mesh workload (e7), a butterfly
# workload (e8), the fault-injection path (e15), the streaming traffic
# engine (e17), the RWA strategy zoo head-to-head (e19), the schedule
# ablation (a1), and the engine micro-benchmarks. Broad enough to notice
# a regression in any subsystem, small enough for a CI smoke job.
BENCHES=(
  bench_e7_mesh
  bench_e8_butterfly_qfn
  bench_e15_fault_resilience
  bench_e17_streaming_engine
  bench_e19_strategy_zoo
  bench_a1_delta_schedule
)

shopt -s nullglob
count_records() {
  local files=("$RECORDS"/benchrecord_*.json)
  echo "${#files[@]}"
}

for bench in "${BENCHES[@]}"; do
  echo "== $bench (REPRO_SCALE=$SCALE) =="
  before="$(count_records)"
  "$BUILD/bench/$bench" > "$RECORDS/$bench.txt"
  after="$(count_records)"
  # A bench that exits 0 without writing its BenchRecord would roll up
  # as a silent success; every bench must leave exactly its record.
  if [ "$after" -le "$before" ]; then
    echo "$bench produced no benchrecord_*.json (had $before, still" \
         "$after) — the bench ran but recorded nothing" >&2
    exit 1
  fi
done

echo "== bench_perf_simulator =="
before="$(count_records)"
REPRO_SCALE= "$BUILD/bench/bench_perf_simulator" --benchmark_min_time=0.1 \
  > "$RECORDS/bench_perf_simulator.txt"
after="$(count_records)"
if [ "$after" -le "$before" ]; then
  echo "bench_perf_simulator produced no benchrecord_*.json — the bench" \
       "ran but recorded nothing" >&2
  exit 1
fi

record_files=("$RECORDS"/benchrecord_*.json)
if [ "${#record_files[@]}" -eq 0 ]; then
  echo "no benchrecord_*.json produced — was the build compiled with" \
       "OPTO_OBS_ENABLED=0, or OPTO_OBS=0 set?" >&2
  exit 1
fi

"$BUILD/tools/bench_compare" --rollup "$OUT/BENCH_${LABEL}.json" \
  --label "$LABEL" --scale "$SCALE" "${record_files[@]}"

# Surface what the kernels actually dispatched to (scalar/sse2/avx2) and
# which RNG backend produced the draws, as recorded by the benches
# themselves — this is what makes two BENCH files comparable.
active_simd="$(grep -o '"simd": *"[a-z0-9]*"' "${record_files[0]}" \
  | head -n1 | sed 's/.*"simd": *"\([a-z0-9]*\)".*/\1/')"
active_rng="$(grep -o '"rng": *"[a-z0-9-]*"' "${record_files[0]}" \
  | head -n1 | sed 's/.*"rng": *"\([a-z0-9-]*\)".*/\1/')"
echo "active simd level: ${active_simd:-unknown}  rng: ${active_rng:-unknown}"
echo "suite roll-up: $OUT/BENCH_${LABEL}.json"
