#!/usr/bin/env bash
# Runs every experiment binary and collects outputs (text + CSV/JSON).
#
#   scripts/run_all_experiments.sh [results-dir] [repro-scale]
#
# results-dir defaults to ./results, repro-scale to 1 (see REPRO_SCALE in
# EXPERIMENTS.md). Build first: cmake -B build -G Ninja && cmake --build build
set -euo pipefail

cd "$(dirname "$0")/.."
RESULTS="${1:-results}"
SCALE="${2:-1}"
mkdir -p "$RESULTS"

if [ ! -d build/bench ]; then
  echo "build/bench not found — build the project first" >&2
  exit 1
fi

for bench in build/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  case "$name" in
    bench_perf_*) continue ;;  # micro-benchmarks run separately
  esac
  echo "== $name =="
  REPRO_SCALE="$SCALE" OPTO_RESULTS_DIR="$RESULTS" \
    "$bench" | tee "$RESULTS/$name.txt"
done

echo
echo "micro-benchmarks:"
build/bench/bench_perf_simulator --benchmark_min_time=0.1 \
  | tee "$RESULTS/bench_perf_simulator.txt"

echo
echo "all outputs under $RESULTS/"
