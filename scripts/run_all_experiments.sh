#!/usr/bin/env bash
# Runs every experiment binary and collects outputs (text + CSV/JSON).
#
#   scripts/run_all_experiments.sh [results-dir] [repro-scale]
#
# results-dir defaults to ./results, repro-scale to 1 (see REPRO_SCALE in
# EXPERIMENTS.md). Build first: cmake -B build -G Ninja && cmake --build build
#
# A failing bench does not abort the sweep: every binary runs, failures are
# collected, a final PASS/FAIL summary is printed, and the exit status is
# non-zero iff any bench failed (so CI smoke jobs fail loudly).
set -uo pipefail

cd "$(dirname "$0")/.."
RESULTS="${1:-results}"
SCALE="${2:-1}"
mkdir -p "$RESULTS"

if [ ! -d build/bench ]; then
  echo "build/bench not found — build the project first" >&2
  exit 1
fi

declare -a passed=()
declare -a failed=()

run_bench() {
  # run_bench <name> <command...>: tee output, record pass/fail. `tee`
  # masks the bench's exit status, so take it from PIPESTATUS.
  local name="$1"
  shift
  echo "== $name =="
  "$@" | tee "$RESULTS/$name.txt"
  local status="${PIPESTATUS[0]}"
  if [ "$status" -eq 0 ]; then
    passed+=("$name")
  else
    echo "!! $name exited with status $status" >&2
    failed+=("$name")
  fi
}

for bench in build/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  case "$name" in
    bench_perf_*) continue ;;  # micro-benchmarks run separately
  esac
  REPRO_SCALE="$SCALE" OPTO_RESULTS_DIR="$RESULTS" \
    run_bench "$name" "$bench"
done

echo
echo "micro-benchmarks:"
OPTO_RESULTS_DIR="$RESULTS" run_bench bench_perf_simulator \
  build/bench/bench_perf_simulator --benchmark_min_time=0.1

echo
echo "all outputs under $RESULTS/"
echo "summary: ${#passed[@]} passed, ${#failed[@]} failed"
if [ "${#failed[@]}" -gt 0 ]; then
  printf 'FAIL: %s\n' "${failed[@]}"
  exit 1
fi
echo "PASS: all experiments completed"
