#!/usr/bin/env bash
# Differential-fuzz smoke: replays the committed corpus byte-strictly,
# then runs a fixed-seed generated sweep. This is the tier-1-sized
# version of the nightly long fuzz; any divergence is shrunk to a
# minimal reproducer in OUT and the script exits non-zero.
#
#   scripts/run_fuzz_smoke.sh [--seed S] [--cases N] [--out DIR]
#                             [--build-dir DIR]
#
#   --seed S       generator stream seed (default 1 — fixed so PR CI is
#                  reproducible; the nightly job randomizes it)
#   --cases N      generated cases (default 500)
#   --out DIR      where minimized repro files land (default fuzz-out)
#   --build-dir D  where opto_fuzz lives (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

SEED=1
CASES=500
OUT=fuzz-out
BUILD=build
while [ $# -gt 0 ]; do
  case "$1" in
    --seed)      SEED="$2"; shift 2 ;;
    --cases)     CASES="$2"; shift 2 ;;
    --out)       OUT="$2"; shift 2 ;;
    --build-dir) BUILD="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

FUZZ="$BUILD/tools/opto_fuzz"
if [ ! -x "$FUZZ" ]; then
  echo "opto_fuzz not built at $FUZZ (cmake --build $BUILD --target opto_fuzz)" >&2
  exit 2
fi

echo "== corpus replay (strict bytes) =="
"$FUZZ" --replay-dir tests/corpus --strict-bytes

echo "== generated sweep: seed $SEED, $CASES cases =="
"$FUZZ" --seed "$SEED" --cases "$CASES" --out "$OUT"
