#!/usr/bin/env bash
# Scenario smoke: the CI gate for the .opto DSL front-end.
#
#  1. Parses + canonically dumps every committed examples/**/*.opto and
#     byte-compares the dump against examples/golden/<stem>.json — any
#     grammar, validator, or canonical-writer drift fails here with a
#     named diff.
#  2. Runs the four equivalence scenarios (E1 leveled-upper, E15 fault
#     plan, E17 streaming engine, E19 strategy zoo) at REPRO_SCALE=0.1
#     through BOTH the
#     DSL front-end (opto_run --run) and the hand-coded C++ path
#     (opto_run --builtin), byte-compares the model-result JSON, and
#     diffs the captured BenchRecords with bench_compare --warn-only
#     (counters must agree; wall-clock gauges may differ).
#
#   scripts/run_scenario_smoke.sh [--build-dir DIR] [--out DIR]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD=build
OUT=scenario-smoke-out
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD="$2"; shift 2 ;;
    --out)       OUT="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

RUN="$BUILD/tools/opto_run"
COMPARE="$BUILD/tools/bench_compare"
for tool in "$RUN" "$COMPARE"; do
  if [ ! -x "$tool" ]; then
    echo "$tool not built (cmake --build $BUILD --target opto_run bench_compare)" >&2
    exit 2
  fi
done
mkdir -p "$OUT"

echo "== canonical dumps vs committed goldens =="
count=0
for f in examples/*.opto examples/repros/*.opto; do
  stem="$(basename "$f" .opto)"
  golden="examples/golden/$stem.json"
  if [ ! -f "$golden" ]; then
    echo "$f has no golden dump; regenerate with:" >&2
    echo "  $RUN --dump $f --out $golden" >&2
    exit 1
  fi
  "$RUN" --dump "$f" --out "$OUT/dump_$stem.json"
  cmp "$golden" "$OUT/dump_$stem.json"
  count=$((count + 1))
done
echo "$count scenarios match their goldens"

echo "== DSL vs hand-coded equivalence (REPRO_SCALE=0.1) =="
export REPRO_SCALE=0.1
for stem in e1_leveled_upper e15_fault_resilience e17_streaming_engine \
            e19_strategy_zoo; do
  name="${stem//_/-}"
  mkdir -p "$OUT/$name/dsl" "$OUT/$name/native"
  OPTO_RESULTS_DIR="$OUT/$name/dsl" \
    "$RUN" --run "examples/$stem.opto" --out "$OUT/$name/dsl.json"
  OPTO_RESULTS_DIR="$OUT/$name/native" \
    "$RUN" --builtin "$name" --out "$OUT/$name/native.json"
  cmp "$OUT/$name/dsl.json" "$OUT/$name/native.json"
  echo "MATCH $name (model-result JSON byte-identical)"
  "$COMPARE" "$OUT/$name/native/benchrecord_$name.json" \
    "$OUT/$name/dsl/benchrecord_$name.json" --warn-only
done
echo "scenario smoke: all gates green"
