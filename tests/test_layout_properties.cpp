// Property sweeps across the whole lightpath-layout family: for every
// (family, base), routes must chain source→destination using only tunnels
// from the kept-lit set, and coarser bases can never need more
// wavelengths.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "opto/paths/lightpath_layout.hpp"
#include "opto/paths/tree_layout.hpp"
#include "opto/rng/rng.hpp"

namespace opto {
namespace {

struct FamilyCase {
  std::string family;
  std::uint32_t base;
};

class LayoutProperties
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  // families: 0 chain, 1 ring, 2 mesh, 3 tree.
  int family() const { return std::get<0>(GetParam()); }
  std::uint32_t base() const {
    return static_cast<std::uint32_t>(std::get<1>(GetParam()));
  }

  struct Instance {
    std::shared_ptr<const Graph> graph;
    PathCollection lightpaths;
    std::function<std::vector<Path>(NodeId, NodeId)> route;
    NodeId nodes;
    std::uint32_t wavelengths;
  };

  Instance make(std::uint32_t base_override) const {
    Instance inst;
    switch (family()) {
      case 0: {
        auto layout = make_chain_layout(64, base_override);
        inst.graph = layout.graph;
        inst.lightpaths = layout_lightpaths(layout);
        inst.route = [layout](NodeId s, NodeId d) {
          return layout_route(layout, s, d);
        };
        inst.nodes = 64;
        inst.wavelengths = layout_wavelength_congestion(layout);
        break;
      }
      case 1: {
        auto layout = make_ring_layout(64, base_override);
        inst.graph = layout.graph;
        inst.lightpaths = ring_layout_lightpaths(layout);
        inst.route = [layout](NodeId s, NodeId d) {
          return ring_layout_route(layout, s, d);
        };
        inst.nodes = 64;
        inst.wavelengths = ring_layout_wavelength_congestion(layout);
        break;
      }
      case 2: {
        auto layout = make_mesh_layout(8, base_override);
        inst.graph = layout.graph;
        inst.lightpaths = mesh_layout_lightpaths(layout);
        inst.route = [layout](NodeId s, NodeId d) {
          return mesh_layout_route(layout, s, d);
        };
        inst.nodes = 64;
        inst.wavelengths = mesh_layout_wavelength_congestion(layout);
        break;
      }
      default: {
        Rng rng(99);
        auto layout = make_tree_layout(random_tree_parents(64, rng),
                                       base_override);
        inst.graph = layout.graph;
        inst.lightpaths = tree_layout_lightpaths(layout);
        inst.route = [layout](NodeId s, NodeId d) {
          return tree_layout_route(layout, s, d);
        };
        inst.nodes = 64;
        inst.wavelengths = tree_layout_wavelength_congestion(layout);
        break;
      }
    }
    return inst;
  }
};

TEST_P(LayoutProperties, RoutesChainAndUseKeptTunnels) {
  const auto inst = make(base());
  const auto contains = [&](const Path& tunnel) {
    for (const Path& candidate : inst.lightpaths.paths())
      if (candidate == tunnel) return true;
    return false;
  };
  Rng rng(7);
  for (int sample = 0; sample < 25; ++sample) {
    const auto src = static_cast<NodeId>(rng.next_below(inst.nodes));
    const auto dst = static_cast<NodeId>(rng.next_below(inst.nodes));
    const auto route = inst.route(src, dst);
    if (src == dst) {
      EXPECT_TRUE(route.empty());
      continue;
    }
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front().source(), src);
    EXPECT_EQ(route.back().destination(), dst);
    for (std::size_t i = 0; i < route.size(); ++i) {
      if (i > 0) {
        EXPECT_EQ(route[i].source(), route[i - 1].destination());
      }
      EXPECT_TRUE(contains(route[i])) << "tunnel " << i << " not kept lit";
    }
  }
}

TEST_P(LayoutProperties, CoarserBaseNeverNeedsMoreWavelengths) {
  // Compare against the doubled base (the ring accepts only bases whose
  // powers hit n = 64, i.e. 2, 4, 8 — doubling stays valid below 8).
  if (base() >= 8) GTEST_SKIP();
  const auto fine = make(base());
  const auto coarse = make(base() * 2);
  EXPECT_GE(fine.wavelengths, coarse.wavelengths);
}

// Outside the macro: brace-initializer commas would split its arguments.
std::string layout_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kFamilies[] = {"chain", "ring", "mesh", "tree"};
  return std::string(kFamilies[std::get<0>(info.param)]) + "_b" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutProperties,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(2, 4, 8)),
    layout_case_name);

}  // namespace
}  // namespace opto
