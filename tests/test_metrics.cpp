#include <gtest/gtest.h>

#include "opto/sim/metrics.hpp"

namespace opto {
namespace {

TEST(Metrics, MergeAddsCountersAndMaxesMakespan) {
  PassMetrics a;
  a.launched = 3;
  a.delivered = 2;
  a.killed = 1;
  a.truncated = 4;
  a.truncated_arrivals = 1;
  a.contentions = 5;
  a.retunes = 2;
  a.makespan = 17;
  a.worm_steps = 30;
  a.link_busy_steps = 90;
  a.steps = 20;
  a.registry_probes = 50;
  a.registry_hits = 10;
  a.peak_inflight = 6;
  a.wall_ns = 1000;
  PassMetrics b;
  b.launched = 1;
  b.delivered = 1;
  b.makespan = 9;
  b.worm_steps = 4;
  b.link_busy_steps = 12;
  b.steps = 7;
  b.registry_probes = 5;
  b.registry_hits = 2;
  b.peak_inflight = 9;
  b.wall_ns = 400;
  a.merge(b);
  EXPECT_EQ(a.launched, 4u);
  EXPECT_EQ(a.delivered, 3u);
  EXPECT_EQ(a.killed, 1u);
  EXPECT_EQ(a.truncated, 4u);
  EXPECT_EQ(a.contentions, 5u);
  EXPECT_EQ(a.retunes, 2u);
  EXPECT_EQ(a.makespan, 17);
  EXPECT_EQ(a.worm_steps, 34u);
  EXPECT_EQ(a.link_busy_steps, 102u);
  EXPECT_EQ(a.steps, 27u);
  EXPECT_EQ(a.registry_probes, 55u);
  EXPECT_EQ(a.registry_hits, 12u);
  EXPECT_EQ(a.peak_inflight, 9u);  // max across passes, not a sum
  EXPECT_EQ(a.wall_ns, 1400u);
}

TEST(Metrics, UtilizationFormula) {
  PassMetrics metrics;
  metrics.makespan = 9;  // 10 steps
  metrics.link_busy_steps = 40;
  // 8 links × 2 wavelengths × 10 steps = 160 slots.
  EXPECT_DOUBLE_EQ(metrics.utilization(8, 2), 0.25);
}

TEST(Metrics, UtilizationDegenerateInputs) {
  PassMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.utilization(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(metrics.utilization(8, 0), 0.0);
  metrics.makespan = 0;
  metrics.link_busy_steps = 4;
  EXPECT_DOUBLE_EQ(metrics.utilization(4, 1), 1.0);
}

}  // namespace
}  // namespace opto
