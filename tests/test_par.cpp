#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "opto/par/parallel_for.hpp"
#include "opto/par/thread_pool.hpp"

namespace opto {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(5, 5, [&touched](std::size_t) { touched = true; }, &pool);
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, ChunkedCoversRange) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for_chunked(
      0, 100,
      [&sum](std::size_t lo, std::size_t hi) {
        long local = 0;
        for (std::size_t i = lo; i < hi; ++i) local += static_cast<long>(i);
        sum.fetch_add(local);
      },
      &pool);
  EXPECT_EQ(sum.load(), 99L * 100L / 2L);
}

TEST(ParallelFor, ReentrantFromTasks) {
  // A parallel_for inside a pool task must not deadlock the completion
  // latch of the outer call (it uses its own).
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> counter{0};
  parallel_for(
      0, 4,
      [&](std::size_t) {
        parallel_for(0, 8, [&](std::size_t) { counter.fetch_add(1); },
                     &inner);
      },
      &outer);
  EXPECT_EQ(counter.load(), 32);
}

TEST(ParallelFor, SequentialFallbackSinglethread) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(0, 5, [&order](std::size_t i) { order.push_back(int(i)); },
               &pool);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ThrowingTaskRethrownAtWaitIdle) {
  // Regression: a throwing task used to skip the completion bookkeeping,
  // leaving in_flight_ stuck above zero and wait_idle() hung forever.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 10);  // the other tasks still ran
  // The pool survives and the error is not reported twice.
  pool.submit([&counter] { counter.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, FirstErrorWinsAcrossManyThrowingTasks) {
  ThreadPool pool(2);
  for (int i = 0; i < 20; ++i)
    pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ParallelFor, ThrowingBodyPropagates) {
  // Regression: an exception escaping the body used to strand the
  // completion latch (the arrival was skipped), hanging the call forever.
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(
                   0, 1000,
                   [](std::size_t i) {
                     if (i == 637) throw std::runtime_error("body boom");
                   },
                   &pool),
               std::runtime_error);
  // The pool itself saw only completed tasks: no error leaks into it and
  // later work runs normally.
  EXPECT_NO_THROW(pool.wait_idle());
  std::atomic<int> counter{0};
  parallel_for(0, 100, [&counter](std::size_t) { counter.fetch_add(1); },
               &pool);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, ThrowingBodyPropagatesChunked) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for_chunked(
                   0, 500,
                   [](std::size_t lo, std::size_t) {
                     if (lo == 0) throw std::runtime_error("chunk boom");
                   },
                   &pool),
               std::runtime_error);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ParallelFor, ThrowingBodyPropagatesInline) {
  // The single-thread path runs inline; the exception must surface the
  // same way as in the pooled path.
  ThreadPool pool(1);
  EXPECT_THROW(parallel_for(
                   0, 10,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("inline boom");
                   },
                   &pool),
               std::runtime_error);
}

}  // namespace
}  // namespace opto
