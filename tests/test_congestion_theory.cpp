#include <gtest/gtest.h>

#include <cmath>

#include "opto/analysis/congestion_theory.hpp"

namespace opto {
namespace {

TEST(CongestionTheory, Lemma24Halves) {
  EXPECT_DOUBLE_EQ(lemma24_congestion(1024, 1, 16), 1024.0);
  EXPECT_DOUBLE_EQ(lemma24_congestion(1024, 2, 16), 512.0);
  EXPECT_DOUBLE_EQ(lemma24_congestion(1024, 5, 16), 64.0);
}

TEST(CongestionTheory, Lemma24FloorsAtLog) {
  // For n = 2^16 the floor is 16.
  EXPECT_DOUBLE_EQ(lemma24_congestion(1024, 20, 1 << 16), 16.0);
}

TEST(CongestionTheory, Lemma210DoublyExponentialDecay) {
  const double C = 1 << 14;
  const double B = 1, L = 8, delta = 4 * C;  // γ = 32·B·Δ̂/((L−1)C̃)
  const double r1 = lemma210_residual(C, B, delta, L, 1);
  const double r2 = lemma210_residual(C, B, delta, L, 2);
  const double r3 = lemma210_residual(C, B, delta, L, 3);
  EXPECT_DOUBLE_EQ(r1, C);  // 2^0 - 1 = 0 exponent
  EXPECT_LT(r2, r1);
  EXPECT_LT(r3, r2);
  // Doubly exponential: log-ratio doubles each round (+1 pattern).
  const double gamma = 32.0 * B * delta / ((L - 1) * C);
  EXPECT_NEAR(r2, C / gamma, 1e-6);
  EXPECT_NEAR(r3, C / (gamma * gamma * gamma), 1e-3);
}

TEST(CongestionTheory, Lemma210NoDecayRegime) {
  // γ ≤ 1: the bound gives no decay.
  EXPECT_DOUBLE_EQ(lemma210_residual(1 << 14, 1, 1, 64, 5),
                   double{1 << 14});
}

TEST(CongestionTheory, Lemma210NeedsL2) {
  EXPECT_DOUBLE_EQ(lemma210_residual(100, 1, 10, 1, 3), 0.0);
}

TEST(CongestionTheory, Lemma210RoundsLogLog) {
  const double C = std::exp2(20);
  const double rounds16 =
      lemma210_rounds_to(C, 1, 8 * C, 8, 16.0);
  const double rounds_tiny =
      lemma210_rounds_to(C, 1, 8 * C, 8, 1.0);
  EXPECT_GT(rounds16, 0.0);
  EXPECT_GE(rounds_tiny, rounds16);
  // loglog shape: even driving the threshold down 16x adds little.
  EXPECT_LT(rounds_tiny - rounds16, 2.0);
}

TEST(CongestionTheory, ChernoffBoundsSane) {
  EXPECT_LE(chernoff_upper_tail(100, 1.0), std::exp(-100.0 * 0.38));
  EXPECT_LE(chernoff_upper_tail(0.0, 1.0), 1.0);
  EXPECT_NEAR(chernoff_lower_tail(50, 0.5), std::exp(-0.25 * 50 / 2), 1e-12);
  EXPECT_LE(chernoff_lower_tail(1e-9, 1.0), 1.0);
}

TEST(CongestionTheory, PairwiseBlockProbability) {
  // 2L/(BΔ), clamped at 1.
  EXPECT_DOUBLE_EQ(pairwise_block_probability(4, 2, 16), 8.0 / 32.0);
  EXPECT_DOUBLE_EQ(pairwise_block_probability(100, 1, 10), 1.0);
}

TEST(CongestionTheory, Lemma28ChainProbability) {
  // ((L−1)/(2BΔ))^i.
  EXPECT_DOUBLE_EQ(lemma28_chain_probability(5, 1, 8, 1), 4.0 / 16.0);
  EXPECT_DOUBLE_EQ(lemma28_chain_probability(5, 1, 8, 3),
                   std::pow(0.25, 3.0));
  EXPECT_DOUBLE_EQ(lemma28_chain_probability(1, 1, 8, 2), 0.0);  // L = 1
  EXPECT_DOUBLE_EQ(lemma28_chain_probability(100, 1, 2, 4), 1.0);  // clamp
}

TEST(CongestionTheory, Lemma29SplitSumsAndShape) {
  // x_i + α = i(y + nα)/binom(n+1,2); the split must sum back to y + nα
  // and grow linearly in i.
  const double y = 90.0, alpha = 5.0;
  const std::uint32_t n = 4;
  const auto split = lemma29_optimal_split(y, n, alpha);
  ASSERT_EQ(split.size(), n);
  double sum = 0;
  for (const double s : split) sum += s;
  EXPECT_NEAR(sum, y + n * alpha, 1e-9);
  for (std::size_t i = 1; i < split.size(); ++i)
    EXPECT_NEAR(split[i] / split[0], static_cast<double>(i + 1), 1e-9);
}

TEST(CongestionTheory, Lemma29SplitActuallyMaximizes) {
  // Spot-check optimality: the lemma's split beats uniform and a random
  // perturbation on the objective Π (x_i + α)^i.
  const double y = 30.0, alpha = 2.0;
  const std::uint32_t n = 3;
  const auto objective = [&](const std::vector<double>& xs_plus_alpha) {
    double log_value = 0;
    for (std::size_t i = 0; i < xs_plus_alpha.size(); ++i)
      log_value += (i + 1.0) * std::log(xs_plus_alpha[i]);
    return log_value;
  };
  const auto best = lemma29_optimal_split(y, n, alpha);
  const std::vector<double> uniform{y / 3 + alpha, y / 3 + alpha,
                                    y / 3 + alpha};
  const std::vector<double> skewed{2 + alpha, 8 + alpha, 20 + alpha};
  EXPECT_GE(objective(best), objective(uniform));
  EXPECT_GE(objective(best), objective(skewed));
}

}  // namespace
}  // namespace opto
