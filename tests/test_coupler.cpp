// Contention-resolution decision table.
#include <gtest/gtest.h>

#include <vector>

#include "opto/optical/coupler.hpp"

namespace opto {
namespace {

Contender c(WormId worm, std::uint32_t priority = 0) {
  return Contender{worm, priority};
}

TEST(Coupler, ServeFirstFreeLinkAdmitsSingleEntrant) {
  const std::vector<Contender> entrants{c(3)};
  const auto outcome = resolve_contention(
      ContentionRule::ServeFirst, TiePolicy::KillAll, std::nullopt, entrants);
  EXPECT_EQ(outcome.admitted, 3u);
  EXPECT_TRUE(outcome.eliminated.empty());
  EXPECT_FALSE(outcome.occupant_truncated);
}

TEST(Coupler, ServeFirstOccupiedEliminatesAllEntrants) {
  const std::vector<Contender> entrants{c(1), c(2)};
  const auto outcome = resolve_contention(
      ContentionRule::ServeFirst, TiePolicy::KillAll, c(9), entrants);
  EXPECT_EQ(outcome.admitted, kInvalidWorm);
  EXPECT_EQ(outcome.eliminated, (std::vector<WormId>{1, 2}));
  EXPECT_FALSE(outcome.occupant_truncated);
}

TEST(Coupler, ServeFirstTieKillAll) {
  const std::vector<Contender> entrants{c(5), c(7)};
  const auto outcome = resolve_contention(
      ContentionRule::ServeFirst, TiePolicy::KillAll, std::nullopt, entrants);
  EXPECT_EQ(outcome.admitted, kInvalidWorm);
  EXPECT_EQ(outcome.eliminated.size(), 2u);
}

TEST(Coupler, ServeFirstTieFirstWinsPicksSmallestId) {
  const std::vector<Contender> entrants{c(7), c(5), c(9)};
  const auto outcome =
      resolve_contention(ContentionRule::ServeFirst, TiePolicy::FirstWins,
                         std::nullopt, entrants);
  EXPECT_EQ(outcome.admitted, 5u);
  EXPECT_EQ(outcome.eliminated, (std::vector<WormId>{7, 9}));
}

TEST(Coupler, PriorityOccupantWins) {
  const std::vector<Contender> entrants{c(1, 3), c(2, 4)};
  const auto outcome = resolve_contention(
      ContentionRule::Priority, TiePolicy::KillAll, c(9, 10), entrants);
  EXPECT_EQ(outcome.admitted, kInvalidWorm);
  EXPECT_FALSE(outcome.occupant_truncated);
  EXPECT_EQ(outcome.eliminated.size(), 2u);
}

TEST(Coupler, PriorityEntrantTruncatesOccupant) {
  const std::vector<Contender> entrants{c(1, 3), c(2, 12)};
  const auto outcome = resolve_contention(
      ContentionRule::Priority, TiePolicy::KillAll, c(9, 10), entrants);
  EXPECT_EQ(outcome.admitted, 2u);
  EXPECT_TRUE(outcome.occupant_truncated);
  EXPECT_EQ(outcome.eliminated, (std::vector<WormId>{1}));
}

TEST(Coupler, PriorityNoOccupantHighestEntrantWins) {
  const std::vector<Contender> entrants{c(4, 2), c(6, 8), c(5, 5)};
  const auto outcome = resolve_contention(
      ContentionRule::Priority, TiePolicy::KillAll, std::nullopt, entrants);
  EXPECT_EQ(outcome.admitted, 6u);
  EXPECT_EQ(outcome.eliminated.size(), 2u);
  EXPECT_FALSE(outcome.occupant_truncated);
}

TEST(Coupler, StringNames) {
  EXPECT_STREQ(to_string(ContentionRule::ServeFirst), "serve-first");
  EXPECT_STREQ(to_string(ContentionRule::Priority), "priority");
  EXPECT_STREQ(to_string(TiePolicy::KillAll), "kill-all");
  EXPECT_STREQ(to_string(TiePolicy::FirstWins), "first-wins");
}

}  // namespace
}  // namespace opto
