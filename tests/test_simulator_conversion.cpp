// Wavelength-conversion extension (§4 / the [11] setting): a blocked
// entrant at a converting router retunes to a free wavelength instead of
// dying.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {
namespace {

std::shared_ptr<Graph> make_chain(NodeId nodes) {
  auto graph = std::make_shared<Graph>(nodes, "chain");
  for (NodeId u = 0; u + 1 < nodes; ++u) graph->add_edge(u, u + 1);
  return graph;
}

PathCollection chain_bundle(std::shared_ptr<const Graph> graph, NodeId from,
                            NodeId to, std::uint32_t copies) {
  PathCollection collection(graph);
  std::vector<NodeId> nodes;
  for (NodeId u = from; u <= to; ++u) nodes.push_back(u);
  for (std::uint32_t c = 0; c < copies; ++c)
    collection.add(Path::from_nodes(*graph, nodes));
  return collection;
}

LaunchSpec spec(PathId path, SimTime start, Wavelength wl, std::uint32_t len,
                std::uint32_t priority = 0) {
  LaunchSpec s;
  s.path = path;
  s.start_time = start;
  s.wavelength = wl;
  s.length = len;
  s.priority = priority;
  return s;
}

TEST(Conversion, BlockedEntrantRetunes) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 2);
  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Full;
  Simulator sim(collection, config);
  // Without conversion w1 (same wavelength, overlapping window) dies; with
  // conversion it hops to wavelength 1 and both deliver.
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 3), spec(1, 1, 0, 3)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_TRUE(result.worms[1].delivered_intact());
  EXPECT_EQ(result.metrics.retunes, 1u);
  EXPECT_EQ(result.metrics.killed, 0u);
}

TEST(Conversion, NoConversionStillKills) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 2);
  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::None;
  Simulator sim(collection, config);
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 3), spec(1, 1, 0, 3)});
  EXPECT_EQ(result.worms[1].status, WormStatus::Killed);
}

TEST(Conversion, AllWavelengthsBusyStillKillsServeFirst) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 3);
  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Full;
  Simulator sim(collection, config);
  // w0 and w1 fill both wavelengths; w2 has nowhere to go.
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 4), spec(1, 0, 1, 4), spec(2, 1, 0, 4)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_TRUE(result.worms[1].delivered_intact());
  EXPECT_EQ(result.worms[2].status, WormStatus::Killed);
  EXPECT_EQ(result.worms[2].blocked_by, 0u);  // holder of preferred λ0
}

TEST(Conversion, SimultaneousEntrantsSpreadAcrossWavelengths) {
  const auto graph = make_chain(4);
  const auto collection = chain_bundle(graph, 0, 3, 3);
  SimConfig config;
  config.bandwidth = 4;
  config.conversion = ConversionMode::Full;
  Simulator sim(collection, config);
  // All three prefer λ0 at t=0; with conversion they fan out.
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 2), spec(1, 0, 0, 2), spec(2, 0, 0, 2)});
  EXPECT_EQ(result.metrics.delivered, 3u);
  EXPECT_EQ(result.metrics.retunes, 2u);  // ids 1, 2 retune at link 0
}

TEST(Conversion, RetunedWormKeepsNewWavelengthDownstream) {
  const auto graph = make_chain(6);
  const auto collection = chain_bundle(graph, 0, 5, 2);
  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Full;
  config.record_trace = true;
  Simulator sim(collection, config);
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 2), spec(1, 1, 0, 2)});
  ASSERT_TRUE(result.worms[1].delivered_intact());
  // After the retune at link 0, every admission of worm 1 uses λ1.
  bool seen_retune = false;
  for (const auto& event : result.trace.events()) {
    if (event.worm != 1) continue;
    if (event.kind == TraceKind::Retune) {
      seen_retune = true;
      EXPECT_EQ(event.wavelength, 1u);
    } else if (event.kind == TraceKind::Admit && seen_retune) {
      EXPECT_EQ(event.wavelength, 1u);
    }
  }
  EXPECT_TRUE(seen_retune);
}

TEST(Conversion, SparseOnlyConvertsAtFlaggedNodes) {
  const auto graph = make_chain(6);
  const auto collection = chain_bundle(graph, 0, 5, 2);
  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Sparse;
  config.converters.assign(graph->node_count(), 0);
  // No converter at node 0 (the coupler feeding link 0): the injection
  // collision still kills.
  {
    Simulator sim(collection, config);
    const auto result = sim.run(
        std::vector<LaunchSpec>{spec(0, 0, 0, 3), spec(1, 1, 0, 3)});
    EXPECT_EQ(result.worms[1].status, WormStatus::Killed);
  }
  // Converter at node 0: the same collision retunes.
  config.converters[0] = 1;
  {
    Simulator sim(collection, config);
    const auto result = sim.run(
        std::vector<LaunchSpec>{spec(0, 0, 0, 3), spec(1, 1, 0, 3)});
    EXPECT_TRUE(result.worms[1].delivered_intact());
    EXPECT_EQ(result.metrics.retunes, 1u);
  }
}

TEST(Conversion, PriorityStealsWeakestOccupantWhenSaturated) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 3);
  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Full;
  config.rule = ContentionRule::Priority;
  Simulator sim(collection, config);
  // λ0 held by rank 5, λ1 by rank 2; entrant rank 9 steals λ1 (weakest).
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 6, 5), spec(1, 0, 1, 6, 2), spec(2, 2, 0, 6, 9)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_TRUE(result.worms[2].delivered_intact());
  EXPECT_TRUE(result.worms[1].truncated);
  EXPECT_EQ(result.metrics.truncated, 1u);
}

TEST(Conversion, PriorityLoserStillKilledWhenWeaker) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 3);
  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Full;
  config.rule = ContentionRule::Priority;
  Simulator sim(collection, config);
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 6, 5), spec(1, 0, 1, 6, 8), spec(2, 2, 0, 6, 1)});
  EXPECT_EQ(result.worms[2].status, WormStatus::Killed);
}

TEST(Conversion, TriangleDeadlockEscapedWithConversion) {
  // The Fig. 6 livelock requires all three worms to share one wavelength
  // everywhere; with B=2 and full conversion someone always escapes.
  const std::uint32_t L = 4;
  const auto collection = make_triangle_collection(1, 10, L);
  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Full;
  Simulator sim(collection, config);
  std::vector<LaunchSpec> specs;
  for (PathId id = 0; id < 3; ++id) specs.push_back(spec(id, 0, 0, L));
  const auto result = sim.run(specs);
  EXPECT_EQ(result.metrics.delivered, 3u);
}

TEST(Conversion, TruncationShortensHistoryWavelengthClaims) {
  // A retuned worm later truncated must release its *new* wavelength's
  // claims (regression guard for the wavelength-history bookkeeping).
  auto graph = std::make_shared<Graph>(7, "hist");
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(2, 3);
  graph->add_edge(4, 1);
  graph->add_edge(2, 5);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{4, 1, 2, 5}));

  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Full;
  config.rule = ContentionRule::Priority;
  Simulator sim(collection, config);
  // w0 λ0; w1 retunes to λ1 at injection; w2 (top rank, λ1) saturates both
  // wavelengths at link 1->2 and steals from the weaker of w0/w1.
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 6, 5), spec(1, 0, 0, 6, 3), spec(2, 2, 1, 6, 9)});
  EXPECT_TRUE(result.worms[2].delivered_intact());
  EXPECT_EQ(result.metrics.truncated, 1u);
  // The weakest (w1, rank 3) was cut.
  EXPECT_TRUE(result.worms[1].truncated);
}

}  // namespace
}  // namespace opto
