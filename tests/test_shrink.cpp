// Case minimization: shrink_case must preserve the predicate and
// well-formedness while driving generated cases down to (near-)minimal
// reproducers.
#include <gtest/gtest.h>

#include <string>

#include "opto/testlib/differ.hpp"
#include "opto/testlib/fuzz_case.hpp"
#include "opto/testlib/generator.hpp"
#include "opto/testlib/shrink.hpp"

namespace opto::testlib {
namespace {

/// A generated case guaranteed to satisfy `predicate`, scanning the
/// stream from index 0.
FuzzCase find_case(std::uint64_t seed, const CasePredicate& predicate) {
  for (std::uint64_t i = 0; i < 2000; ++i) {
    FuzzCase fuzz = generate_case(seed, i);
    if (predicate(fuzz)) return fuzz;
  }
  ADD_FAILURE() << "no generated case satisfies the predicate";
  return generate_case(seed, 0);
}

TEST(Shrink, PreservesPredicateAndWellFormedness) {
  const CasePredicate wants_kill = [](const FuzzCase& fuzz) {
    const DiffReport report = diff_case(fuzz);
    return report.ok() && report.metrics.killed > 0;
  };
  const FuzzCase start = find_case(11, wants_kill);
  ShrinkStats stats;
  const FuzzCase small = shrink_case(start, wants_kill, {}, &stats);
  std::string error;
  EXPECT_TRUE(well_formed(small, &error)) << error;
  EXPECT_TRUE(wants_kill(small));
  EXPECT_GT(stats.checks, 0u);
  EXPECT_GE(stats.rounds, 1u);
}

TEST(Shrink, AKillNeedsOnlyTwoWorms) {
  // Any contention kill is witnessed by exactly one other worm, so the
  // minimal reproducer has two specs; the greedy passes should find it.
  const CasePredicate wants_kill = [](const FuzzCase& fuzz) {
    const DiffReport report = diff_case(fuzz);
    return report.ok() && report.metrics.killed > 0;
  };
  const FuzzCase small = shrink_case(find_case(23, wants_kill), wants_kill);
  EXPECT_EQ(small.specs.size(), 2u);
  EXPECT_LE(small.paths.size(), 2u);
  // Compaction leaves only nodes the paths actually visit. (The passes
  // are greedy and single-variable, so the coordinated global minimum —
  // two length-1 worms dead-heating on one link — is not guaranteed;
  // the footprint just has to be small.)
  EXPECT_LE(small.node_count, 12u);
  EXPECT_TRUE(wants_kill(small));
}

TEST(Shrink, StripsConfigDownToTheStructuralCore) {
  // The predicate only cares about spec count, so every optional feature
  // — faults, conversion, priority rule, bandwidth, start offsets —
  // must shrink away.
  const CasePredicate two_specs = [](const FuzzCase& fuzz) {
    return fuzz.specs.size() >= 2;
  };
  const CasePredicate interesting = [&](const FuzzCase& fuzz) {
    return two_specs(fuzz);
  };
  FuzzCase start = find_case(37, [](const FuzzCase& fuzz) {
    return fuzz.specs.size() >= 2 && fuzz.has_faults &&
           fuzz.conversion != ConversionMode::None;
  });
  const FuzzCase small = shrink_case(std::move(start), interesting);
  EXPECT_EQ(small.specs.size(), 2u);
  EXPECT_FALSE(small.has_faults);
  EXPECT_EQ(small.conversion, ConversionMode::None);
  EXPECT_EQ(small.rule, ContentionRule::ServeFirst);
  EXPECT_EQ(small.bandwidth, 1u);
  for (const LaunchSpec& spec : small.specs) {
    EXPECT_EQ(spec.start_time, 0u);
    EXPECT_EQ(spec.wavelength, 0u);
    EXPECT_EQ(spec.length, 1u);
  }
}

TEST(Shrink, RespectsTheCheckBudget) {
  const CasePredicate anything = [](const FuzzCase&) { return true; };
  ShrinkOptions options;
  options.max_checks = 7;
  ShrinkStats stats;
  shrink_case(generate_case(5, 0), anything, options, &stats);
  EXPECT_LE(stats.checks, 7u);
}

TEST(Shrink, MinimizedDivergencePredicatesStayStable) {
  // Re-shrinking an already minimal case must terminate quickly and
  // change nothing: every pass is a no-op once at a fixed point.
  const CasePredicate wants_truncation = [](const FuzzCase& fuzz) {
    const DiffReport report = diff_case(fuzz);
    return report.ok() && report.metrics.truncated > 0;
  };
  const FuzzCase once =
      shrink_case(find_case(53, wants_truncation), wants_truncation);
  ShrinkStats stats;
  const FuzzCase twice = shrink_case(once, wants_truncation, {}, &stats);
  EXPECT_EQ(canonical_json(once), canonical_json(twice));
  EXPECT_EQ(stats.improvements, 0u);
}

}  // namespace
}  // namespace opto::testlib
