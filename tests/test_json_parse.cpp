// util/json_parse: the read side of the JSON plumbing plus the
// canonical (sorted-key) writer the determinism gate depends on.
#include <gtest/gtest.h>

#include <sstream>

#include "opto/util/json_parse.hpp"

namespace opto {
namespace {

std::string rewrite(const std::string& text, bool sorted = false) {
  const auto value = parse_json(text);
  EXPECT_TRUE(value.has_value()) << text;
  std::ostringstream out;
  if (value) write_json(out, *value, sorted);
  return out.str();
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->boolean);
  EXPECT_FALSE(parse_json("false")->boolean);
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2")->as_number(), -1250.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, ObjectAndArrayAccessors) {
  const auto value = parse_json(
      R"({"name":"mesh","n":64,"tags":["a","b"],"nested":{"x":1.5}})");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->string_at("name"), "mesh");
  EXPECT_DOUBLE_EQ(value->number_at("n"), 64.0);
  EXPECT_EQ(value->number_at("absent", -1.0), -1.0);
  const JsonValue* tags = value->find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_TRUE(tags->is_array());
  ASSERT_EQ(tags->items.size(), 2u);
  EXPECT_EQ(tags->items[1].as_string(), "b");
  const JsonValue* nested = value->find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_DOUBLE_EQ(nested->number_at("x"), 1.5);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\n\t")")->as_string(), "a\"b\\c\n\t");
  // \u escapes incl. a surrogate pair (U+1D11E, the G clef).
  EXPECT_EQ(parse_json(R"("\u0041")")->as_string(), "A");
  EXPECT_EQ(parse_json(R"("\ud834\udd1e")")->as_string(),
            "\xF0\x9D\x84\x9E");
  EXPECT_FALSE(parse_json(R"("\ud834")").has_value());  // lone surrogate
}

TEST(JsonParse, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(parse_json("[1,]", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":1,}", &error).has_value());
  EXPECT_FALSE(parse_json("{'a':1}", &error).has_value());
  EXPECT_FALSE(parse_json("nul", &error).has_value());
  EXPECT_FALSE(parse_json("1 2", &error).has_value());  // trailing garbage
  EXPECT_FALSE(parse_json("\"unterminated", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(parse_json(deep).has_value());
  // A modest depth is fine.
  std::string ok = "1";
  for (int i = 0; i < 50; ++i) ok = "[" + ok + "]";
  EXPECT_TRUE(parse_json(ok).has_value());
}

TEST(JsonParse, RoundTripPreservesDocumentOrder) {
  const std::string doc = R"({"b":1,"a":{"z":true,"y":null},"c":[1,2.5]})";
  EXPECT_EQ(rewrite(doc), doc);
}

TEST(JsonParse, SortedKeysAreCanonical) {
  // Same content, different member order → identical canonical text.
  EXPECT_EQ(rewrite(R"({"b":1,"a":2})", true),
            rewrite(R"({"a":2,"b":1})", true));
  EXPECT_EQ(rewrite(R"({"b":{"d":1,"c":2},"a":3})", true),
            R"({"a":3,"b":{"c":2,"d":1}})");
}

TEST(JsonParse, IntegralNumbersPrintWithoutExponent) {
  // Counter values must survive a parse→write cycle textually: the
  // determinism job byte-compares them.
  EXPECT_EQ(rewrite("123456789012"), "123456789012");
  EXPECT_EQ(rewrite("0"), "0");
  EXPECT_EQ(rewrite("-7"), "-7");
}

TEST(JsonParse, BuilderHelpers) {
  JsonValue object = JsonValue::make_object();
  object.add_member("flag", JsonValue::of(true));
  object.add_member("name", JsonValue::of("x"));
  object.add_member("n", JsonValue::of(3.0));
  JsonValue list = JsonValue::make_array();
  list.items.push_back(JsonValue::of(1.0));
  object.add_member("list", std::move(list));
  std::ostringstream out;
  write_json(out, object);
  EXPECT_EQ(out.str(), R"({"flag":true,"name":"x","n":3,"list":[1]})");
}

}  // namespace
}  // namespace opto
