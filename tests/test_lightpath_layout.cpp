// Chain lightpath layouts ([13,14,22]): structure, routing, and the
// hop-congestion trade-off shape.
#include <gtest/gtest.h>

#include "opto/paths/lightpath_layout.hpp"
#include "opto/paths/wavelength_assignment.hpp"

namespace opto {
namespace {

TEST(Layout, SpansArePowersOfBase) {
  const auto layout = make_chain_layout(65, 4);
  EXPECT_EQ(layout.spans, (std::vector<std::uint32_t>{1, 4, 16, 64}));
  EXPECT_EQ(layout.levels, 4u);
}

TEST(Layout, LightpathCoversItsSpan) {
  const auto layout = make_chain_layout(17, 2);
  const auto path = layout_lightpath(layout, 3, 8);  // span 8 from node 8
  EXPECT_EQ(path.source(), 8u);
  EXPECT_EQ(path.destination(), 16u);
  EXPECT_EQ(path.length(), 8u);
}

TEST(Layout, RouteReachesDestination) {
  const auto layout = make_chain_layout(100, 3);
  for (const auto& [src, dst] : {std::pair<NodeId, NodeId>{0, 99},
                                {99, 0},
                                {1, 98},
                                {37, 38},
                                {50, 23}}) {
    const auto route = layout_route(layout, src, dst);
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front().source(), src);
    EXPECT_EQ(route.back().destination(), dst);
    for (std::size_t i = 1; i < route.size(); ++i)
      EXPECT_EQ(route[i].source(), route[i - 1].destination());
  }
}

TEST(Layout, SelfRouteIsEmpty) {
  const auto layout = make_chain_layout(20, 2);
  EXPECT_TRUE(layout_route(layout, 7, 7).empty());
}

TEST(Layout, AlignedLongJumpIsOneHop) {
  const auto layout = make_chain_layout(65, 2);
  // 0 -> 64 is exactly the top-level tunnel.
  EXPECT_EQ(layout_route(layout, 0, 64).size(), 1u);
  EXPECT_EQ(layout_route(layout, 64, 0).size(), 1u);
}

TEST(Layout, WavelengthCongestionEqualsCoveringLevels) {
  // Every physical link is covered by one tunnel per level whose span
  // fits, per direction.
  const auto layout = make_chain_layout(65, 2);  // spans 1..64 all full
  EXPECT_EQ(layout_wavelength_congestion(layout), 7u);
  // And greedy coloring of the lightpaths needs exactly that many
  // wavelengths per direction.
  const auto assignment = assign_wavelengths(layout_lightpaths(layout),
                                             ColoringOrder::ByDegreeDesc);
  EXPECT_GE(assignment.colors_used, 7u);
}

TEST(Layout, HopCongestionTradeoff) {
  // [22]'s trade-off: fewer wavelengths (larger base → fewer levels)
  // costs more hops, and vice versa.
  const std::uint32_t n = 82;
  const auto fine = make_chain_layout(n, 2);
  const auto coarse = make_chain_layout(n, 9);
  EXPECT_GT(layout_wavelength_congestion(fine),
            layout_wavelength_congestion(coarse));
  EXPECT_LT(layout_max_hops(fine), layout_max_hops(coarse));
}

TEST(Layout, MaxHopsWithinTheoryBound) {
  for (const std::uint32_t base : {2u, 3u, 5u}) {
    const auto layout = make_chain_layout(121, base);
    // ≤ 2(b−1)·levels: up-phase and down-phase each use < b tunnels per
    // level.
    EXPECT_LE(layout_max_hops(layout), 2 * (base - 1) * layout.levels)
        << "base " << base;
  }
}

TEST(Layout, MeanHopsBelowMax) {
  const auto layout = make_chain_layout(50, 3);
  EXPECT_LE(layout_mean_hops(layout),
            static_cast<double>(layout_max_hops(layout)));
  EXPECT_GT(layout_mean_hops(layout), 1.0);
}

TEST(MeshLayoutTest, RouteReachesDestinationDimensionOrder) {
  const auto layout = make_mesh_layout(9, 2);
  for (const auto& [src, dst] : {std::pair<NodeId, NodeId>{0, 80},
                                 {80, 0},
                                 {4, 76},
                                 {40, 40},
                                 {8, 72}}) {
    const auto route = mesh_layout_route(layout, src, dst);
    if (src == dst) {
      EXPECT_TRUE(route.empty());
      continue;
    }
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front().source(), src);
    EXPECT_EQ(route.back().destination(), dst);
    for (std::size_t i = 1; i < route.size(); ++i)
      EXPECT_EQ(route[i].source(), route[i - 1].destination());
  }
}

TEST(MeshLayoutTest, PureRowOrColumnMoves) {
  const auto layout = make_mesh_layout(9, 2);
  // (0,0) -> (8,0): a single aligned column tunnel of span 8.
  EXPECT_EQ(mesh_layout_route(layout, layout.node_at(0, 0),
                              layout.node_at(8, 0))
                .size(),
            1u);
  // (3,0) -> (3,8): row move only.
  const auto row_route = mesh_layout_route(layout, layout.node_at(3, 0),
                                           layout.node_at(3, 8));
  for (const Path& tunnel : row_route)
    EXPECT_EQ(tunnel.source() / 9, 3u);  // stays on row 3
}

TEST(MeshLayoutTest, WavelengthCongestionIsPerDimensionLevels) {
  // Row and column tunnels use disjoint fibers; each fiber is covered by
  // one tunnel per level of its own dimension.
  const auto layout = make_mesh_layout(9, 2);  // spans 1,2,4,8 -> 4 levels
  EXPECT_EQ(mesh_layout_wavelength_congestion(layout), 4u);
}

TEST(MeshLayoutTest, MaxHopsAboutTwiceChain) {
  const auto mesh = make_mesh_layout(9, 2);
  const auto chain = make_chain_layout(9, 2);
  EXPECT_LE(mesh_layout_max_hops(mesh), 2 * layout_max_hops(chain));
  EXPECT_GE(mesh_layout_max_hops(mesh), layout_max_hops(chain));
}

TEST(MeshLayoutTest, TradeoffMirrorsChain) {
  const auto fine = make_mesh_layout(10, 2);
  const auto coarse = make_mesh_layout(10, 9);
  EXPECT_GT(mesh_layout_wavelength_congestion(fine),
            mesh_layout_wavelength_congestion(coarse));
  EXPECT_LT(mesh_layout_max_hops(fine), mesh_layout_max_hops(coarse));
}

TEST(RingLayoutTest, RoutesTakeTheShorterArc) {
  const auto layout = make_ring_layout(64, 2);
  // 0 -> 16 clockwise: exactly one span-16 tunnel.
  EXPECT_EQ(ring_layout_route(layout, 0, 16).size(), 1u);
  // 0 -> 63 counter-clockwise: one span-1 tunnel across the wrap.
  const auto wrap = ring_layout_route(layout, 0, 63);
  ASSERT_EQ(wrap.size(), 1u);
  EXPECT_EQ(wrap[0].source(), 0u);
  EXPECT_EQ(wrap[0].destination(), 63u);
}

TEST(RingLayoutTest, AllPairsChainCorrectly) {
  const auto layout = make_ring_layout(27, 3);
  for (NodeId src = 0; src < 27; src += 5)
    for (NodeId dst = 0; dst < 27; ++dst) {
      const auto route = ring_layout_route(layout, src, dst);
      if (src == dst) {
        EXPECT_TRUE(route.empty());
        continue;
      }
      ASSERT_FALSE(route.empty());
      EXPECT_EQ(route.front().source(), src);
      EXPECT_EQ(route.back().destination(), dst);
      for (std::size_t i = 1; i < route.size(); ++i)
        EXPECT_EQ(route[i].source(), route[i - 1].destination());
    }
}

TEST(RingLayoutTest, CongestionIsLevelsAndHopsBounded) {
  const auto layout = make_ring_layout(64, 2);
  EXPECT_EQ(layout.levels, 6u);  // spans 1..32
  EXPECT_EQ(ring_layout_wavelength_congestion(layout), 6u);
  // Shorter arc + greedy ladder: ≤ 2(b−1)·levels (align-up + fit).
  EXPECT_LE(ring_layout_max_hops(layout), 12u);
}

TEST(RingLayoutTest, TradeoffMirrorsChain) {
  const auto fine = make_ring_layout(64, 2);
  const auto coarse = make_ring_layout(64, 8);
  EXPECT_GT(ring_layout_wavelength_congestion(fine),
            ring_layout_wavelength_congestion(coarse));
  EXPECT_LT(ring_layout_max_hops(fine), ring_layout_max_hops(coarse));
}

TEST(RingLayoutTestDeath, RejectsNonPowerSizes) {
  EXPECT_DEATH(make_ring_layout(24, 2), "base");
}

TEST(MeshLayoutTest, LightpathsAreValidPaths) {
  const auto layout = make_mesh_layout(5, 2);
  const auto lightpaths = mesh_layout_lightpaths(layout);
  EXPECT_GT(lightpaths.size(), 0u);
  for (const Path& p : lightpaths.paths()) {
    EXPECT_GE(p.length(), 1u);
    EXPECT_LE(p.length(), 4u);  // max span = 4 at side 5
  }
}

}  // namespace
}  // namespace opto
