// Property tests for the RWA strategy layer (DESIGN.md §11):
//   * safety — across every strategy, no two accepted routes in a round
//     ever share a (link, wavelength) channel, wavelengths stay inside
//     the band, and routes connect their request's endpoints;
//   * Least-Used vs First-Fit — pinned, locally-verified instances
//     covering the full relationship: the common case where the two
//     coincide, an instance where spreading strictly wins, and the
//     committed counterexamples where packing wins (the bound is a
//     tendency, not a theorem, and the test refuses to overclaim);
//   * Random-Fit determinism — the keyed Philox draw is independent of
//     what else is in the batch, and whole trial aggregates are
//     byte-identical run-to-run and equal to a sequential re-fold, which
//     is what makes OPTO_THREADS and batch shape unobservable.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "opto/graph/fattree.hpp"
#include "opto/graph/graph.hpp"
#include "opto/rng/rng.hpp"
#include "opto/rng/splitmix64.hpp"
#include "opto/rwa/schedule.hpp"
#include "opto/rwa/strategy.hpp"

namespace opto::rwa {
namespace {

/// Random connected-ish instance: a spanning chain plus Bernoulli
/// chords, and a request list over random endpoint pairs.
std::pair<Graph, std::vector<RwaRequest>> random_instance(
    std::uint64_t seed) {
  Rng rng = Rng::stream(0xbadcafe, seed);
  const NodeId nodes = static_cast<NodeId>(4 + rng.next_below(9));
  Graph graph(nodes);
  for (NodeId i = 0; i + 1 < nodes; ++i) graph.add_edge(i, i + 1);
  for (NodeId u = 0; u < nodes; ++u)
    for (NodeId v = u + 2; v < nodes; ++v)
      if (rng.next_bernoulli(0.2)) graph.add_edge(u, v);
  std::vector<RwaRequest> requests;
  const std::uint64_t count = 2 + rng.next_below(11);
  for (std::uint64_t r = 0; r < count; ++r)
    requests.push_back(
        RwaRequest{static_cast<NodeId>(rng.next_below(nodes)),
                   static_cast<NodeId>(rng.next_below(nodes))});
  return {std::move(graph), std::move(requests)};
}

TEST(RwaProperties, AcceptedRoutesNeverShareAChannel) {
  for (std::uint64_t instance = 0; instance < 40; ++instance) {
    const auto [graph, requests] = random_instance(instance);
    RwaConfig config;
    config.bandwidth = static_cast<std::uint16_t>(1 + instance % 3);
    config.candidates = 2 + instance % 2;
    config.split_ways = 2;
    config.seed = splitmix64_once(instance);
    for (const StrategyKind kind : all_strategy_kinds()) {
      const auto strategy = make_strategy(kind);
      for (std::uint32_t round = 1; round <= 3; ++round) {
        strategy->begin(graph, config, round);
        std::set<std::pair<EdgeId, Wavelength>> claimed;
        for (std::uint32_t uid = 0; uid < requests.size(); ++uid) {
          const RwaDecision decision =
              strategy->assign(requests[uid], uid);
          if (!decision.accepted) continue;
          ASSERT_EQ(decision.routes.size(), decision.lambdas.size());
          ASSERT_FALSE(decision.routes.empty());
          for (std::size_t i = 0; i < decision.routes.size(); ++i) {
            const Path& route = decision.routes[i];
            EXPECT_EQ(route.source(), requests[uid].source);
            EXPECT_EQ(route.destination(), requests[uid].destination);
            EXPECT_LT(decision.lambdas[i], config.bandwidth);
            for (const EdgeId link : route.links())
              EXPECT_TRUE(
                  claimed.insert({link, decision.lambdas[i]}).second)
                  << to_string(kind) << " double-claimed (link " << link
                  << ", λ" << decision.lambdas[i] << ") on instance "
                  << instance << " round " << round << " uid " << uid;
          }
        }
      }
    }
  }
}

/// Runs one strategy on one instance seed through the round driver at
/// the given band and returns the result.
StrategyRunResult run_one(StrategyKind kind, std::uint64_t instance,
                          std::uint16_t bandwidth) {
  auto [graph, requests] = random_instance(instance);
  StrategyScheduleConfig config;
  config.rwa.bandwidth = bandwidth;
  config.rwa.candidates = 3;
  config.rwa.seed = splitmix64_once(instance);
  config.worm_length = 2;
  config.max_rounds = 16;
  const auto strategy = make_strategy(kind);
  return run_strategy_schedule(
      std::make_shared<Graph>(std::move(graph)), requests, *strategy,
      config);
}

TEST(RwaProperties, LeastUsedVersusFirstFitOnPinnedInstances) {
  // "Least-Used never beats/loses to First-Fit" is NOT a theorem in
  // either direction, so this test pins concrete instances (found by an
  // exhaustive scan over the random_instance stream, B ∈ {1,2,3}) and
  // asserts the exact verified relationship on each:
  //   * instances 0–16 at B=2: the two policies coincide on every
  //     observable (the common case on small instances);
  //   * instance 41 at B=2: spreading wins — Least-Used serves everyone
  //     in round 1 where First-Fit blocks one request into round 2;
  //   * instance 17 at B=2: packing wins — the mirror-image instance,
  //     committed so nobody "fixes" the zoo toward a false universal
  //     bound;
  //   * instance 124 at B=3: First-Fit finishes with a smaller color
  //     count, the counterexample to "Least-Used uses no more of the
  //     band".
  for (std::uint64_t instance = 0; instance < 17; ++instance) {
    const StrategyRunResult ff = run_one(StrategyKind::FirstFit, instance, 2);
    const StrategyRunResult lu = run_one(StrategyKind::LeastUsed, instance, 2);
    EXPECT_EQ(lu.colors, ff.colors) << "instance " << instance;
    EXPECT_EQ(lu.blocked_first_round, ff.blocked_first_round)
        << "instance " << instance;
    EXPECT_EQ(lu.rounds, ff.rounds) << "instance " << instance;
  }

  const StrategyRunResult ff41 = run_one(StrategyKind::FirstFit, 41, 2);
  const StrategyRunResult lu41 = run_one(StrategyKind::LeastUsed, 41, 2);
  EXPECT_EQ(lu41.blocked_first_round, 0u);
  EXPECT_EQ(ff41.blocked_first_round, 1u);
  EXPECT_LT(lu41.rounds, ff41.rounds);

  const StrategyRunResult ff17 = run_one(StrategyKind::FirstFit, 17, 2);
  const StrategyRunResult lu17 = run_one(StrategyKind::LeastUsed, 17, 2);
  EXPECT_EQ(ff17.blocked_first_round, 0u);
  EXPECT_EQ(lu17.blocked_first_round, 1u);
  EXPECT_LT(ff17.rounds, lu17.rounds);

  const StrategyRunResult ff124 = run_one(StrategyKind::FirstFit, 124, 3);
  const StrategyRunResult lu124 = run_one(StrategyKind::LeastUsed, 124, 3);
  EXPECT_EQ(ff124.colors, 2u);
  EXPECT_EQ(lu124.colors, 3u);
}

TEST(RwaProperties, RandomFitDrawIgnoresTheRestOfTheBatch) {
  // The λ picked for a request depends only on (seed, round, uid) and
  // the free set on its own route — serving unrelated (link-disjoint)
  // requests first must not move the draw. Hosts under different edge
  // switches of a fat tree give disjoint first-hop routes.
  const FatTreeTopology topo = make_fat_tree(4);
  RwaConfig config;
  config.bandwidth = 4;
  config.seed = 77;
  const RwaRequest probe{topo.hosts[0], topo.hosts[1]};  // same edge switch
  const std::uint32_t probe_uid = 9;

  const auto strategy = make_strategy(StrategyKind::RandomFit);
  strategy->begin(topo.graph, config, 1);
  const RwaDecision alone = strategy->assign(probe, probe_uid);
  ASSERT_TRUE(alone.accepted);

  strategy->begin(topo.graph, config, 1);
  // Different pod entirely: no shared directed link with the probe.
  const RwaDecision unrelated =
      strategy->assign(RwaRequest{topo.hosts[4], topo.hosts[5]}, 0);
  ASSERT_TRUE(unrelated.accepted);
  const RwaDecision crowded = strategy->assign(probe, probe_uid);
  ASSERT_TRUE(crowded.accepted);

  EXPECT_EQ(alone.lambdas, crowded.lambdas);
  EXPECT_EQ(alone.routes, crowded.routes);
}

TEST(RwaProperties, TrialAggregatesAreByteStableAndMatchASequentialFold) {
  // run_strategy_trials runs trials across the global thread pool; its
  // aggregate must be bit-identical to a sequential re-derivation with
  // the same per-trial seeds (the splitmix64 derivation run_trials
  // uses), and to a second parallel run. This is the in-process face of
  // the OPTO_THREADS∈{1,4} byte-equality the E19 bench gate checks.
  const auto factory = [](std::uint64_t seed) {
    auto [graph, requests] = random_instance(seed % 7);
    return std::make_pair(
        std::shared_ptr<const Graph>(
            std::make_shared<Graph>(std::move(graph))),
        std::move(requests));
  };
  StrategyScheduleConfig config;
  config.rwa.bandwidth = 2;
  config.rwa.candidates = 2;
  config.worm_length = 2;
  config.max_rounds = 16;
  const std::size_t trials = 24;
  const std::uint64_t base_seed = 4242;

  for (const StrategyKind kind :
       {StrategyKind::RandomFit, StrategyKind::Valiant}) {
    const StrategyAggregate first =
        run_strategy_trials(factory, kind, config, trials, base_seed);
    const StrategyAggregate second =
        run_strategy_trials(factory, kind, config, trials, base_seed);
    EXPECT_EQ(first.blocking.samples(), second.blocking.samples());
    EXPECT_EQ(first.rounds.samples(), second.rounds.samples());
    EXPECT_EQ(first.makespan.samples(), second.makespan.samples());
    EXPECT_EQ(first.colors.samples(), second.colors.samples());
    EXPECT_EQ(first.failures, second.failures);

    // Sequential re-fold with the exact seed derivation.
    StrategyAggregate expected;
    const auto strategy = make_strategy(kind);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const std::uint64_t seed =
          splitmix64_once(base_seed + 0x9e3779b97f4a7c15ull * (trial + 1));
      auto [graph, requests] = factory(seed);
      StrategyScheduleConfig trial_config = config;
      trial_config.rwa.seed = seed ^ 0xabcdef;
      const StrategyRunResult run = run_strategy_schedule(
          std::move(graph), requests, *strategy, trial_config);
      expected.blocking.add(run.blocking);
      if (!run.success) {
        ++expected.failures;
        continue;
      }
      expected.rounds.add(static_cast<double>(run.rounds));
      expected.makespan.add(static_cast<double>(run.makespan));
      expected.colors.add(static_cast<double>(run.colors));
    }
    EXPECT_EQ(first.blocking.samples(), expected.blocking.samples());
    EXPECT_EQ(first.rounds.samples(), expected.rounds.samples());
    EXPECT_EQ(first.makespan.samples(), expected.makespan.samples());
    EXPECT_EQ(first.colors.samples(), expected.colors.samples());
    EXPECT_EQ(first.failures, expected.failures);
  }
}

}  // namespace
}  // namespace opto::rwa
