// Switch taxonomy (§1.2): generalized switches can split wavelengths of
// one input across outputs, elementary switches cannot — the property the
// protocol depends on.
#include <gtest/gtest.h>

#include <vector>

#include "opto/optical/router.hpp"

namespace opto {
namespace {

TEST(Router, GeneralizedSplitsWavelengths) {
  const std::vector<RouterDemand> demands{
      {0, 0, 0},  // input 0, λ0 -> output 0
      {0, 1, 1},  // input 0, λ1 -> output 1
  };
  EXPECT_TRUE(
      check_router_demands(SwitchType::Generalized, 2, demands).ok);
  EXPECT_FALSE(
      check_router_demands(SwitchType::Elementary, 2, demands).ok);
}

TEST(Router, ElementarySingleOutputPerInputIsFine) {
  const std::vector<RouterDemand> demands{
      {0, 0, 1},
      {0, 1, 1},
      {1, 0, 0},
  };
  EXPECT_TRUE(check_router_demands(SwitchType::Elementary, 2, demands).ok);
}

TEST(Router, OutputWavelengthCollisionRejected) {
  const std::vector<RouterDemand> demands{
      {0, 0, 1},
      {1, 0, 1},  // same wavelength, same output: collision
  };
  const auto check = check_router_demands(SwitchType::Generalized, 2, demands);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("collide"), std::string::npos);
}

TEST(Router, BandwidthRespected) {
  const std::vector<RouterDemand> demands{{0, 5, 0}};
  EXPECT_FALSE(check_router_demands(SwitchType::Generalized, 4, demands).ok);
  EXPECT_TRUE(check_router_demands(SwitchType::Generalized, 6, demands).ok);
}

TEST(Router, DuplicateInputWavelengthRejected) {
  const std::vector<RouterDemand> demands{{0, 0, 0}, {0, 0, 1}};
  EXPECT_FALSE(check_router_demands(SwitchType::Generalized, 2, demands).ok);
}

TEST(Router, Configure2x2Generalized) {
  const std::vector<RouterDemand> demands{
      {0, 0, 1},
      {0, 1, 0},
      {1, 0, 0},
      {1, 1, 1},
  };
  const auto config = configure_2x2(SwitchType::Generalized, 2, demands);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ((*config)[0 * 2 + 0], 1u);
  EXPECT_EQ((*config)[0 * 2 + 1], 0u);
  EXPECT_EQ((*config)[1 * 2 + 0], 0u);
  EXPECT_EQ((*config)[1 * 2 + 1], 1u);
}

TEST(Router, Configure2x2ElementaryRefusesSplit) {
  const std::vector<RouterDemand> demands{{0, 0, 0}, {0, 1, 1}};
  EXPECT_FALSE(configure_2x2(SwitchType::Elementary, 2, demands).has_value());
}

TEST(Router, StringNames) {
  EXPECT_STREQ(to_string(SwitchType::Elementary), "elementary");
  EXPECT_STREQ(to_string(SwitchType::Generalized), "generalized");
}

}  // namespace
}  // namespace opto
