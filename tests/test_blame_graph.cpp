// Blame graphs: the empirical Claim 2.6 — acyclic under the priority
// rule and on leveled collections, cyclic exactly in the Fig. 6 setting.
#include <gtest/gtest.h>

#include <memory>

#include "opto/analysis/blame_graph.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rng/rng.hpp"

namespace opto {
namespace {

std::vector<LaunchSpec> equal_launches(std::uint32_t count, std::uint32_t L,
                                       std::uint16_t B, Rng* rng = nullptr) {
  std::vector<LaunchSpec> specs(count);
  for (PathId id = 0; id < count; ++id) {
    specs[id].path = id;
    specs[id].start_time =
        rng != nullptr ? static_cast<SimTime>(rng->next_below(8)) : 0;
    specs[id].wavelength =
        rng != nullptr ? static_cast<Wavelength>(rng->next_below(B)) : 0;
    specs[id].length = L;
    specs[id].priority = id;
  }
  return specs;
}

TEST(BlameGraph, TriangleDeadlockIsACycle) {
  const auto collection = make_triangle_collection(1, 10, 4);
  Simulator sim(collection, {});
  const auto pass = sim.run(equal_launches(3, 4, 1));
  const auto graph = BlameGraph::from_pass(pass);
  EXPECT_EQ(graph.edge_count(), 3u);
  EXPECT_TRUE(graph.has_cycle());
  const auto cycles = graph.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<WormId>{0, 1, 2}));  // 0->1->2->0
  EXPECT_EQ(graph.component_sizes(), (std::vector<std::uint32_t>{3}));
}

TEST(BlameGraph, StaircaseChainIsAcyclic) {
  const auto collection = make_staircase_collection(1, 6, 14, 4);
  Simulator sim(collection, {});
  const auto pass = sim.run(equal_launches(6, 4, 1));
  const auto graph = BlameGraph::from_pass(pass);
  EXPECT_EQ(graph.edge_count(), 5u);  // all but the top worm die
  EXPECT_FALSE(graph.has_cycle());
  EXPECT_EQ(graph.component_sizes(), (std::vector<std::uint32_t>{6}));
}

TEST(BlameGraph, PriorityRuleNeverCycles) {
  // Blame edges under the priority rule point to strictly higher ranks.
  const auto collection = make_triangle_collection(16, 10, 4);
  SimConfig config;
  config.rule = ContentionRule::Priority;
  Simulator sim(collection, config);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    auto specs = equal_launches(collection.size(), 4, 1, &rng);
    // Random distinct ranks.
    const auto perm = rng.permutation(collection.size());
    for (PathId id = 0; id < collection.size(); ++id)
      specs[id].priority = perm[id];
    const auto pass = sim.run(specs);
    const auto graph = BlameGraph::from_pass(pass);
    EXPECT_FALSE(graph.has_cycle()) << "trial " << trial;
  }
}

TEST(BlameGraph, LeveledServeFirstNeverCyclesExceptDeadHeats) {
  // Claim 2.6's first bullet: in leveled collections a blocking cycle
  // would need a worm to fail before the level at which it blocks. The
  // one discrete-time artifact outside the paper's model is the dead-heat
  // (two heads in the same flit step): under KillAll both cite each other,
  // a trivial mutual 2-cycle. FirstWins has no dead-heats, so the claim
  // holds exactly.
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(5));
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const auto collection = butterfly_random_q_function(topo, 2, rng);
    SimConfig config;
    config.tie = TiePolicy::FirstWins;
    Simulator sim(collection, config);
    auto specs = equal_launches(collection.size(), 4, 1, &rng);
    const auto pass = sim.run(specs);
    const auto graph = BlameGraph::from_pass(pass);
    EXPECT_FALSE(graph.has_cycle()) << "trial " << trial;
  }
}

TEST(BlameGraph, KillAllDeadHeatsFormMutualTwoCycles) {
  // The documented discrete-time artifact: simultaneous arrivals under
  // KillAll blame each other.
  const auto collection = make_bundle_collection(1, 2, 5);
  Simulator sim(collection, {});
  const auto pass = sim.run(equal_launches(2, 3, 1));
  const auto graph = BlameGraph::from_pass(pass);
  const auto cycles = graph.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 2u);
}

TEST(BlameGraph, NoKillsMeansNoEdges) {
  const auto collection = make_bundle_collection(1, 3, 6);
  SimConfig config;
  config.bandwidth = 4;
  Simulator sim(collection, config);
  std::vector<LaunchSpec> specs(3);
  for (PathId id = 0; id < 3; ++id) {
    specs[id].path = id;
    specs[id].start_time = 0;
    specs[id].wavelength = static_cast<Wavelength>(id);
    specs[id].length = 2;
    specs[id].priority = id;
  }
  const auto pass = sim.run(specs);
  const auto graph = BlameGraph::from_pass(pass);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_FALSE(graph.has_cycle());
  EXPECT_TRUE(graph.component_sizes().empty());
}

TEST(BlameGraph, MultipleStructuresMultipleComponents) {
  const auto collection = make_triangle_collection(3, 10, 4);
  Simulator sim(collection, {});
  const auto pass = sim.run(equal_launches(9, 4, 1));
  const auto graph = BlameGraph::from_pass(pass);
  EXPECT_EQ(graph.cycles().size(), 3u);
  EXPECT_EQ(graph.component_sizes(),
            (std::vector<std::uint32_t>{3, 3, 3}));
}

}  // namespace
}  // namespace opto
