// Topology builders: node/edge counts, coordinate mappings, degrees.
#include <gtest/gtest.h>

#include "opto/graph/butterfly.hpp"
#include "opto/graph/complete.hpp"
#include "opto/graph/debruijn.hpp"
#include "opto/graph/graph_algo.hpp"
#include "opto/graph/hypercube.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/graph/ring.hpp"
#include "opto/graph/shuffle_exchange.hpp"

namespace opto {
namespace {

TEST(Builders, Mesh2D) {
  const auto topo = make_mesh({3, 4});
  EXPECT_EQ(topo.graph.node_count(), 12u);
  // Edges: 2*4 vertical + 3*3 horizontal = 17.
  EXPECT_EQ(topo.graph.undirected_edge_count(), 17u);
  EXPECT_TRUE(is_connected(topo.graph));
  const std::uint32_t coords[] = {2, 3};
  EXPECT_EQ(topo.node_at(coords), 11u);
  EXPECT_EQ(topo.coords_of(11), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(diameter(topo.graph), 2u + 3u);
}

TEST(Builders, Mesh1DIsPath) {
  const auto topo = make_mesh({5});
  EXPECT_EQ(topo.graph.node_count(), 5u);
  EXPECT_EQ(topo.graph.undirected_edge_count(), 4u);
  EXPECT_EQ(diameter(topo.graph), 4u);
}

TEST(Builders, Mesh3DCounts) {
  const auto topo = make_mesh({3, 3, 3});
  EXPECT_EQ(topo.graph.node_count(), 27u);
  EXPECT_EQ(topo.graph.undirected_edge_count(), 3u * (2 * 9));
  EXPECT_EQ(diameter(topo.graph), 6u);
}

TEST(Builders, Torus2D) {
  const auto topo = make_torus({4, 4});
  EXPECT_EQ(topo.graph.node_count(), 16u);
  EXPECT_EQ(topo.graph.undirected_edge_count(), 32u);  // 2 per node
  for (NodeId u = 0; u < 16; ++u) EXPECT_EQ(topo.graph.degree(u), 4u);
  EXPECT_EQ(diameter(topo.graph), 4u);  // 2 + 2
}

TEST(Builders, Hypercube) {
  const auto graph = make_hypercube(4);
  EXPECT_EQ(graph.node_count(), 16u);
  EXPECT_EQ(graph.undirected_edge_count(), 32u);  // n*d/2
  EXPECT_EQ(diameter(graph), 4u);
  EXPECT_EQ(hypercube_neighbor(0b0101, 1), 0b0111u);
}

TEST(Builders, Butterfly) {
  const auto topo = make_butterfly(3);
  EXPECT_EQ(topo.rows(), 8u);
  EXPECT_EQ(topo.levels(), 4u);
  EXPECT_EQ(topo.graph.node_count(), 32u);
  // Each of the 3 source levels contributes 2 edges per row.
  EXPECT_EQ(topo.graph.undirected_edge_count(), 3u * 8u * 2u);
  EXPECT_EQ(topo.level_of(topo.node_at(2, 5)), 2u);
  EXPECT_EQ(topo.row_of(topo.node_at(2, 5)), 5u);
  EXPECT_EQ(topo.input(3), topo.node_at(0, 3));
  EXPECT_EQ(topo.output(3), topo.node_at(3, 3));
  EXPECT_TRUE(is_connected(topo.graph));
}

TEST(Builders, WrapButterfly) {
  const auto topo = make_wrap_butterfly(3);
  EXPECT_EQ(topo.levels(), 3u);
  EXPECT_EQ(topo.graph.node_count(), 24u);
  EXPECT_EQ(topo.graph.undirected_edge_count(), 3u * 8u * 2u);
  // Node-symmetric variant: regular of degree 4.
  for (NodeId u = 0; u < topo.graph.node_count(); ++u)
    EXPECT_EQ(topo.graph.degree(u), 4u);
}

TEST(Builders, Ring) {
  const auto graph = make_ring(7);
  EXPECT_EQ(graph.node_count(), 7u);
  EXPECT_EQ(graph.undirected_edge_count(), 7u);
  EXPECT_EQ(diameter(graph), 3u);
}

TEST(Builders, DeBruijn) {
  const auto graph = make_debruijn(4);
  EXPECT_EQ(graph.node_count(), 16u);
  EXPECT_TRUE(is_connected(graph));
  // Diameter of the de Bruijn graph is at most dim.
  EXPECT_LE(diameter(graph), 4u);
}

TEST(Builders, ShuffleExchange) {
  const auto graph = make_shuffle_exchange(4);
  EXPECT_EQ(graph.node_count(), 16u);
  EXPECT_TRUE(is_connected(graph));
  EXPECT_EQ(rotate_left(0b1000, 4), 0b0001u);
  EXPECT_EQ(rotate_left(0b0011, 4), 0b0110u);
}

TEST(Builders, Complete) {
  const auto graph = make_complete(6);
  EXPECT_EQ(graph.undirected_edge_count(), 15u);
  EXPECT_EQ(diameter(graph), 1u);
}

}  // namespace
}  // namespace opto
