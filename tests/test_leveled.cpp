// Leveled collections (§1.1): consistent unit-increment potentials.
#include <gtest/gtest.h>

#include <memory>

#include "opto/graph/butterfly.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/leveled.hpp"
#include "opto/paths/lowerbound_structures.hpp"

namespace opto {
namespace {

std::shared_ptr<Graph> chain(NodeId n) {
  auto graph = std::make_shared<Graph>(n);
  for (NodeId u = 0; u + 1 < n; ++u) graph->add_edge(u, u + 1);
  return graph;
}

TEST(Leveled, SingleForwardPathIsLeveled) {
  const auto graph = chain(4);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  const auto levels = level_assignment(collection);
  ASSERT_TRUE(levels.has_value());
  EXPECT_EQ((*levels)[0], 0u);
  EXPECT_EQ((*levels)[3], 3u);
}

TEST(Leveled, OpposingPathsAreNotLeveled) {
  // Two paths traversing one edge in opposite directions force
  // level(1) = level(0)+1 and level(0) = level(1)+1.
  const auto graph = chain(3);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{2, 1, 0}));
  EXPECT_FALSE(is_leveled(collection));
}

TEST(Leveled, OffsetPathsShareLevels) {
  const auto graph = chain(5);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{2, 3, 4}));
  const auto levels = level_assignment(collection);
  ASSERT_TRUE(levels.has_value());
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ((*levels)[u], u);
}

TEST(Leveled, IndependentComponentsNormalizedToZero) {
  auto graph = std::make_shared<Graph>(6);
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(3, 4);
  graph->add_edge(4, 5);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{3, 4, 5}));
  const auto levels = level_assignment(collection);
  ASSERT_TRUE(levels.has_value());
  EXPECT_EQ((*levels)[0], 0u);
  EXPECT_EQ((*levels)[3], 0u);
  EXPECT_EQ((*levels)[5], 2u);
}

TEST(Leveled, OddCycleDirectionIsNotLeveled) {
  // Directed triangle a->b->c->a cannot carry a unit-increment potential.
  auto graph = std::make_shared<Graph>(3);
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(2, 0);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{2, 0}));
  EXPECT_FALSE(is_leveled(collection));
}

TEST(Leveled, ButterflyPathSystemIsLeveled) {
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(3));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
  for (std::uint32_t r = 0; r < topo->rows(); ++r)
    requests.emplace_back(r, (r * 3 + 1) % topo->rows());
  const auto collection = butterfly_io_collection(topo, requests);
  const auto levels = level_assignment(collection);
  ASSERT_TRUE(levels.has_value());
  // The butterfly levels themselves are a valid leveling.
  for (std::uint32_t level = 0; level <= 3; ++level)
    for (std::uint32_t row = 0; row < topo->rows(); ++row) {
      const NodeId node = topo->node_at(level, row);
      if ((*levels)[node] != 0 || level == 0) {
        EXPECT_EQ((*levels)[node], level) << "node " << node;
      }
    }
}

TEST(Leveled, StaircaseIsLeveled) {
  const auto collection = make_staircase_collection(2, 4, 10, 4);
  EXPECT_TRUE(is_leveled(collection));
}

TEST(Leveled, TriangleIsNotLeveled) {
  const auto collection = make_triangle_collection(1, 8, 4);
  EXPECT_FALSE(is_leveled(collection));
}

TEST(Leveled, EmptyCollectionIsLeveled) {
  const auto graph = chain(2);
  PathCollection collection(graph);
  EXPECT_TRUE(is_leveled(collection));
}

}  // namespace
}  // namespace opto
