// Static RWA coloring: validity, bounds, and classic shapes.
#include <gtest/gtest.h>

#include <memory>

#include "opto/graph/butterfly.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/wavelength_assignment.hpp"
#include "opto/paths/workloads.hpp"

namespace opto {
namespace {

TEST(WavelengthAssignment, BundleNeedsWidthColors) {
  const auto collection = make_bundle_collection(1, 7, 5);
  for (const ColoringOrder order :
       {ColoringOrder::ByIndex, ColoringOrder::ByDegreeDesc}) {
    const auto assignment = assign_wavelengths(collection, order);
    EXPECT_EQ(assignment.colors_used, 7u);  // a clique needs width colors
    EXPECT_TRUE(is_valid_assignment(collection, assignment));
  }
}

TEST(WavelengthAssignment, DisjointPathsShareColorZero) {
  const auto collection = make_bundle_collection(5, 1, 4);  // 5 lone paths
  const auto assignment =
      assign_wavelengths(collection, ColoringOrder::ByIndex);
  EXPECT_EQ(assignment.colors_used, 1u);
  for (const std::uint32_t c : assignment.color) EXPECT_EQ(c, 0u);
}

TEST(WavelengthAssignment, StaircaseIsTwoColorable) {
  // The staircase conflict graph is a path: chromatic number 2.
  const auto collection = make_staircase_collection(1, 6, 12, 4);
  const auto assignment =
      assign_wavelengths(collection, ColoringOrder::ByIndex);
  EXPECT_EQ(assignment.colors_used, 2u);
  EXPECT_TRUE(is_valid_assignment(collection, assignment));
}

TEST(WavelengthAssignment, TriangleNeedsThree) {
  // The triangle conflict graph is K3.
  const auto collection = make_triangle_collection(1, 8, 4);
  const auto assignment =
      assign_wavelengths(collection, ColoringOrder::ByDegreeDesc);
  EXPECT_EQ(assignment.colors_used, 3u);
}

TEST(WavelengthAssignment, AtMostCongestionPlusOneColors) {
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(5));
  Rng rng(3);
  const auto collection = butterfly_random_q_function(topo, 3, rng);
  const std::uint32_t congestion = collection.path_congestion();
  for (const ColoringOrder order :
       {ColoringOrder::ByIndex, ColoringOrder::ByDegreeDesc}) {
    const auto assignment = assign_wavelengths(collection, order);
    EXPECT_LE(assignment.colors_used, congestion + 1);
    EXPECT_TRUE(is_valid_assignment(collection, assignment));
  }
}

TEST(WavelengthAssignment, ValidityCheckerCatchesConflicts) {
  const auto collection = make_bundle_collection(1, 3, 4);
  WavelengthAssignment bad;
  bad.color = {0, 0, 1};  // two copies share color 0
  bad.colors_used = 2;
  EXPECT_FALSE(is_valid_assignment(collection, bad));
}

TEST(WavelengthAssignment, EmptyCollection) {
  const auto collection = make_bundle_collection(0, 1, 1);
  const auto assignment =
      assign_wavelengths(collection, ColoringOrder::ByIndex);
  EXPECT_EQ(assignment.colors_used, 0u);
  EXPECT_TRUE(is_valid_assignment(collection, assignment));
}

}  // namespace
}  // namespace opto
