#include <gtest/gtest.h>

#include <sstream>

#include "opto/util/json.hpp"
#include "opto/util/table.hpp"

namespace opto {
namespace {

TEST(Json, FlatObject) {
  std::ostringstream os;
  {
    JsonWriter json(os);
    json.begin_object();
    json.key("name");
    json.value("x");
    json.key("count");
    json.value(std::int64_t{-3});
    json.key("ratio");
    json.value(0.5);
    json.key("ok");
    json.value(true);
    json.key("missing");
    json.null();
    json.end_object();
  }
  EXPECT_EQ(os.str(),
            R"({"name":"x","count":-3,"ratio":0.5,"ok":true,"missing":null})");
}

TEST(Json, NestedArrays) {
  std::ostringstream os;
  {
    JsonWriter json(os);
    json.begin_array();
    json.value(std::int64_t{1});
    json.begin_array();
    json.value(std::int64_t{2});
    json.value(std::int64_t{3});
    json.end_array();
    json.begin_object();
    json.key("k");
    json.value("v");
    json.end_object();
    json.end_array();
  }
  EXPECT_EQ(os.str(), R"([1,[2,3],{"k":"v"}])");
}

TEST(Json, Escaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
  std::ostringstream os;
  {
    JsonWriter json(os);
    json.value("say \"hi\"\n");
  }
  EXPECT_EQ(os.str(), R"("say \"hi\"\n")");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  {
    JsonWriter json(os);
    json.begin_array();
    json.value(std::numeric_limits<double>::infinity());
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.end_array();
  }
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(Json, UnsignedValues) {
  std::ostringstream os;
  {
    JsonWriter json(os);
    json.value(std::uint64_t{18446744073709551615ull});
  }
  EXPECT_EQ(os.str(), "18446744073709551615");
}

TEST(JsonDeath, UnbalancedScopes) {
  EXPECT_DEATH(
      {
        std::ostringstream os;
        JsonWriter json(os);
        json.begin_object();
        // destroyed while the object is open
      },
      "unbalanced");
}

TEST(JsonDeath, ValueWithoutKeyInObject) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  EXPECT_DEATH(json.value("orphan"), "key");
  json.key("k");
  json.value("v");
  json.end_object();
}

TEST(TableJson, RoundTripShape) {
  Table table("demo, B=2");
  table.set_header({"a", "b"});
  table.row().cell("x").cell(1.5);
  std::ostringstream os;
  table.print_json(os);
  EXPECT_EQ(os.str(),
            "{\"title\":\"demo, B=2\",\"header\":[\"a\",\"b\"],"
            "\"rows\":[[\"x\",\"1.5\"]]}\n");
}

}  // namespace
}  // namespace opto
