#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "opto/graph/butterfly.hpp"
#include "opto/graph/hypercube.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"

namespace opto {
namespace {

TEST(Workloads, RandomFunctionInRange) {
  Rng rng(3);
  const auto f = random_function(100, rng);
  EXPECT_EQ(f.size(), 100u);
  for (NodeId v : f) EXPECT_LT(v, 100u);
}

TEST(Workloads, RandomPermutationIsBijective) {
  Rng rng(3);
  const auto perm = random_permutation(64, rng);
  std::set<NodeId> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Workloads, FunctionRequestsPairUp) {
  const std::vector<NodeId> f{2, 0, 1};
  const auto requests = function_requests(f);
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0], (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(requests[2], (std::pair<NodeId, NodeId>{2, 1}));
}

TEST(Workloads, QFunctionCounts) {
  Rng rng(9);
  const auto requests = random_q_function_requests(10, 3, rng);
  EXPECT_EQ(requests.size(), 30u);
  for (std::uint32_t i = 0; i < 10; ++i)
    for (std::uint32_t c = 0; c < 3; ++c)
      EXPECT_EQ(requests[i * 3 + c].first, i);
}

TEST(Workloads, MeshRandomFunctionCollection) {
  auto topo = std::make_shared<MeshTopology>(make_mesh({4, 4}));
  Rng rng(17);
  const auto collection = mesh_random_function(topo, rng);
  EXPECT_EQ(collection.size(), 16u);
  EXPECT_LE(collection.dilation(), 6u);  // ≤ (4-1)+(4-1)
  for (PathId id = 0; id < collection.size(); ++id)
    EXPECT_EQ(collection.path(id).source(), id);
}

TEST(Workloads, ButterflyQFunctionCollection) {
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(3));
  Rng rng(23);
  const auto collection = butterfly_random_q_function(topo, 2, rng);
  EXPECT_EQ(collection.size(), 16u);  // 8 rows * q=2
  EXPECT_EQ(collection.dilation(), 3u);
  for (PathId id = 0; id < collection.size(); ++id) {
    EXPECT_EQ(collection.path(id).source(), topo->input(id / 2));
    EXPECT_EQ(topo->level_of(collection.path(id).destination()), 3u);
  }
}

TEST(Workloads, BfsRandomFunctionOnHypercube) {
  auto cube = std::make_shared<Graph>(make_hypercube(4));
  Rng rng(31);
  const auto collection = bfs_random_function(cube, rng);
  EXPECT_EQ(collection.size(), 16u);
  EXPECT_LE(collection.dilation(), 4u);
}

TEST(Workloads, BfsRandomPermutationCoversAllDestinations) {
  auto cube = std::make_shared<Graph>(make_hypercube(3));
  Rng rng(37);
  const auto collection = bfs_random_permutation(cube, rng);
  std::set<NodeId> destinations;
  for (const Path& p : collection.paths())
    destinations.insert(p.destination());
  EXPECT_EQ(destinations.size(), 8u);
}

TEST(Workloads, HotspotRequestsConcentrate) {
  Rng rng(41);
  const NodeId hotspot = 7;
  const auto requests = hotspot_requests(200, hotspot, 0.5, rng);
  ASSERT_EQ(requests.size(), 200u);
  std::size_t to_hotspot = 0;
  for (const auto& [src, dst] : requests) {
    EXPECT_LT(dst, 200u);
    to_hotspot += dst == hotspot ? 1 : 0;
  }
  // ~50% + the uniform background's 1/200 share.
  EXPECT_GT(to_hotspot, 70u);
  EXPECT_LT(to_hotspot, 140u);
}

TEST(Workloads, HotspotExtremes) {
  Rng rng(43);
  for (const auto& [src, dst] : hotspot_requests(30, 3, 1.0, rng))
    EXPECT_EQ(dst, 3u);
  std::size_t hits = 0;
  for (const auto& [src, dst] : hotspot_requests(30, 3, 0.0, rng))
    hits += dst == 3 ? 1 : 0;
  EXPECT_LT(hits, 10u);  // only the uniform background
}

TEST(Workloads, HotspotCongestionDwarfsUniform) {
  // The whole point of the pattern: C̃ ≈ fraction·n for any selector.
  auto topo = std::make_shared<MeshTopology>(make_mesh({6, 6}));
  Rng rng(47);
  const auto hotspot = mesh_collection(
      topo, hotspot_requests(topo->graph.node_count(), 0, 0.8, rng));
  const auto uniform = mesh_random_function(topo, rng);
  EXPECT_GT(hotspot.path_congestion(), 2 * uniform.path_congestion());
}

TEST(Workloads, DeterministicInSeed) {
  auto topo = std::make_shared<MeshTopology>(make_mesh({4, 4}));
  Rng rng_a(5), rng_b(5), rng_c(6);
  const auto a = mesh_random_function(topo, rng_a);
  const auto b = mesh_random_function(topo, rng_b);
  const auto c = mesh_random_function(topo, rng_c);
  bool ab_equal = true, ac_equal = true;
  for (PathId id = 0; id < a.size(); ++id) {
    ab_equal &= a.path(id) == b.path(id);
    ac_equal &= a.path(id) == c.path(id);
  }
  EXPECT_TRUE(ab_equal);
  EXPECT_FALSE(ac_equal);
}

}  // namespace
}  // namespace opto
