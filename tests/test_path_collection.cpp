// Collection metrics — in particular the paper's path congestion C̃
// (paths sharing a directed link), which differs from edge congestion.
#include <gtest/gtest.h>

#include <memory>

#include "opto/paths/path_collection.hpp"

namespace opto {
namespace {

std::shared_ptr<Graph> chain(NodeId n) {
  auto graph = std::make_shared<Graph>(n);
  for (NodeId u = 0; u + 1 < n; ++u) graph->add_edge(u, u + 1);
  return graph;
}

TEST(PathCollection, EmptyStats) {
  const auto graph = chain(3);
  PathCollection collection(graph);
  EXPECT_TRUE(collection.empty());
  EXPECT_EQ(collection.dilation(), 0u);
  EXPECT_EQ(collection.edge_congestion(), 0u);
  EXPECT_EQ(collection.path_congestion(), 0u);
}

TEST(PathCollection, BundleCongestion) {
  const auto graph = chain(4);
  PathCollection collection(graph);
  const std::vector<NodeId> nodes{0, 1, 2, 3};
  for (int i = 0; i < 5; ++i)
    collection.add(Path::from_nodes(*graph, nodes));
  EXPECT_EQ(collection.size(), 5u);
  EXPECT_EQ(collection.dilation(), 3u);
  EXPECT_EQ(collection.edge_congestion(), 5u);
  // Each path shares links with the 4 other copies.
  EXPECT_EQ(collection.path_congestion(), 4u);
}

TEST(PathCollection, OppositeDirectionsDoNotCount) {
  // Two paths traversing the same undirected edge in opposite directions
  // use different optical links and never collide.
  const auto graph = chain(3);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{2, 1, 0}));
  EXPECT_EQ(collection.edge_congestion(), 1u);
  EXPECT_EQ(collection.path_congestion(), 0u);
}

TEST(PathCollection, PathCongestionCountsDistinctSharers) {
  // Star of paths all crossing one middle link, plus one disjoint path.
  auto graph = std::make_shared<Graph>(8);
  graph->add_edge(0, 1);  // shared link 0->1
  graph->add_edge(1, 2);
  graph->add_edge(1, 3);
  graph->add_edge(4, 0);
  graph->add_edge(5, 0);
  graph->add_edge(6, 7);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{4, 0, 1, 2}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{5, 0, 1, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{6, 7}));

  const auto per_path = collection.path_congestions();
  EXPECT_EQ(per_path, (std::vector<std::uint32_t>{2, 2, 2, 0}));
  EXPECT_EQ(collection.path_congestion(), 2u);
  EXPECT_EQ(collection.edge_congestion(), 3u);
}

TEST(PathCollection, SharersCountedOncePerPair) {
  // Two paths sharing two links still count each other once.
  const auto graph = chain(5);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(collection.path_congestion(), 1u);
}

TEST(PathCollection, StatsAggregate) {
  const auto graph = chain(4);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{1, 2}));
  const auto stats = collection.stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.dilation, 3u);
  EXPECT_EQ(stats.edge_congestion, 2u);
  EXPECT_EQ(stats.path_congestion, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_length, 2.0);
}

TEST(PathCollection, SampledCongestionLowerBoundsExact) {
  const auto graph = chain(12);
  PathCollection collection(graph);
  // Staggered overlapping windows give varied per-path congestion.
  for (NodeId start = 0; start + 4 < 12; ++start) {
    std::vector<NodeId> nodes;
    for (NodeId u = start; u <= start + 4; ++u) nodes.push_back(u);
    collection.add(Path::from_nodes(*graph, nodes));
  }
  const std::uint32_t exact = collection.path_congestion();
  const std::uint32_t sampled = collection.path_congestion_sampled(3, 7);
  EXPECT_LE(sampled, exact);
  EXPECT_GT(sampled, 0u);
  // Enough probes recover the exact value w.h.p. on this small instance;
  // asking for >= size probes falls back to the exact computation.
  EXPECT_EQ(collection.path_congestion_sampled(1000, 7), exact);
}

TEST(PathCollection, SampledCongestionEmptyAndDeterministic) {
  const auto graph = chain(3);
  PathCollection empty_collection(graph);
  EXPECT_EQ(empty_collection.path_congestion_sampled(5, 1), 0u);

  PathCollection collection(graph);
  for (int i = 0; i < 6; ++i)
    collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(collection.path_congestion_sampled(2, 9),
            collection.path_congestion_sampled(2, 9));
  EXPECT_EQ(collection.path_congestion_sampled(2, 9), 5u);  // bundle: all equal
}

TEST(PathCollection, FromNodeLists) {
  const auto graph = chain(4);
  const std::vector<std::vector<NodeId>> lists{{0, 1, 2}, {2, 3}};
  const auto collection = collection_from_node_lists(graph, lists);
  EXPECT_EQ(collection.size(), 2u);
  EXPECT_EQ(collection.path(1).source(), 2u);
}

}  // namespace
}  // namespace opto
