// Logging and timing utilities.
#include <gtest/gtest.h>

#include <thread>

#include "opto/util/logging.hpp"
#include "opto/util/timer.hpp"

namespace opto {
namespace {

TEST(Logging, LevelGate) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Below-threshold messages are discarded without side effects.
  OPTO_LOG_DEBUG << "discarded";
  OPTO_LOG_INFO << "discarded " << 42;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(saved);
}

TEST(Logging, StreamingFormats) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Off);
  // Streaming arbitrary types must compile and not crash even when off.
  OPTO_LOG_ERROR << "x=" << 1.5 << " y=" << std::string("s") << " z=" << -3;
  set_log_level(saved);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(12));
  const double first = timer.elapsed_ms();
  EXPECT_GE(first, 10.0);
  EXPECT_LT(first, 2000.0);
  timer.reset();
  EXPECT_LT(timer.elapsed_ms(), first);
  EXPECT_GE(timer.elapsed_seconds(), 0.0);
}

}  // namespace
}  // namespace opto
