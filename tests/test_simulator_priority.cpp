// Priority-rule engine scenarios: truncation, remnant propagation, and the
// acyclicity that Claim 2.6 relies on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {
namespace {

std::shared_ptr<Graph> make_chain(NodeId nodes) {
  auto graph = std::make_shared<Graph>(nodes, "chain");
  for (NodeId u = 0; u + 1 < nodes; ++u) graph->add_edge(u, u + 1);
  return graph;
}

LaunchSpec spec(PathId path, SimTime start, Wavelength wl, std::uint32_t len,
                std::uint32_t priority) {
  LaunchSpec s;
  s.path = path;
  s.start_time = start;
  s.wavelength = wl;
  s.length = len;
  s.priority = priority;
  return s;
}

SimConfig priority_config() {
  SimConfig config;
  config.rule = ContentionRule::Priority;
  return config;
}

TEST(SimulatorPriority, LowPriorityEntrantEliminated) {
  const auto graph = make_chain(5);
  PathCollection collection(graph);
  const std::vector<NodeId> nodes{0, 1, 2, 3, 4};
  collection.add(Path::from_nodes(*graph, nodes));
  collection.add(Path::from_nodes(*graph, nodes));

  Simulator sim(collection, priority_config());
  // Occupant w0 (rank 2) vs entrant w1 (rank 1): occupant wins.
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 4, 2), spec(1, 1, 0, 4, 1)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_EQ(result.worms[1].status, WormStatus::Killed);
  EXPECT_EQ(result.metrics.truncated, 0u);
}

TEST(SimulatorPriority, HighPriorityEntrantTruncatesOccupant) {
  const auto graph = make_chain(5);
  PathCollection collection(graph);
  const std::vector<NodeId> nodes{0, 1, 2, 3, 4};
  collection.add(Path::from_nodes(*graph, nodes));
  collection.add(Path::from_nodes(*graph, nodes));

  Simulator sim(collection, priority_config());
  // w0 (rank 1) enters link 0 at t=0; w1 (rank 2) arrives at t=2 and cuts
  // it: remnant = 2 flits keep going, w0 fails, w1 delivers.
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 4, 1), spec(1, 2, 0, 4, 2)});
  EXPECT_TRUE(result.worms[1].delivered_intact());
  EXPECT_EQ(result.worms[0].status, WormStatus::Delivered);
  EXPECT_TRUE(result.worms[0].truncated);
  EXPECT_FALSE(result.worms[0].delivered_intact());
  EXPECT_EQ(result.metrics.truncated, 1u);
  EXPECT_EQ(result.metrics.truncated_arrivals, 1u);
  EXPECT_EQ(result.metrics.delivered, 1u);
  // Remnant: head entered last link (index 3) at t=3, 2 flits remain, so
  // it finishes at 3 + 2 - 1 = 4 instead of 3 + 4 - 1 = 6.
  EXPECT_EQ(result.worms[0].finish_time, 4);
}

TEST(SimulatorPriority, RemnantStillBlocksDownstream) {
  // w0 truncated at link 0 by w1; its remnant is ahead on link 1 and must
  // still eliminate w2 (lower priority than the remnant) arriving there.
  auto graph = std::make_shared<Graph>(6, "remnant");
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(2, 3);
  graph->add_edge(4, 1);  // w2 joins at node 1
  graph->add_edge(2, 5);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{4, 1, 2, 5}));

  Simulator sim(collection, priority_config());
  // w0 rank 5 starts t=0 (L=6). w1 rank 9 starts t=3, truncates w0 at
  // link 0 -> remnant 3 flits. w0's remnant occupies link 1->2 during
  // [1, 3]. w2 rank 1 arrives at 1->2 at t=3 -> eliminated by remnant.
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 6, 5), spec(1, 3, 0, 6, 9), spec(2, 2, 0, 6, 1)});
  EXPECT_TRUE(result.worms[0].truncated);
  EXPECT_TRUE(result.worms[1].delivered_intact());
  EXPECT_EQ(result.worms[2].status, WormStatus::Killed);
  EXPECT_EQ(result.worms[2].blocked_by, 0u);
}

TEST(SimulatorPriority, RemnantWindowShrinks) {
  // Like the previous test, but the cutter w1 diverges at node 1 and w2
  // arrives at 1->2 right after the shortened remnant passed: without the
  // truncation w0 would occupy 1->2 through t=6; the cut at t=3 frees it
  // from t=4 on.
  auto graph = std::make_shared<Graph>(7, "remnant2");
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(2, 3);
  graph->add_edge(4, 1);
  graph->add_edge(2, 5);
  graph->add_edge(1, 6);  // w1's divergence
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 6}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{4, 1, 2, 5}));

  Simulator sim(collection, priority_config());
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 6, 5), spec(1, 3, 0, 6, 9), spec(2, 3, 0, 6, 1)});
  EXPECT_TRUE(result.worms[0].truncated);
  EXPECT_TRUE(result.worms[1].delivered_intact());
  EXPECT_TRUE(result.worms[2].delivered_intact());
}

TEST(SimulatorPriority, HighestRankAlwaysSurvives) {
  // In any contention pattern, the globally top-ranked worm can never be
  // killed or truncated.
  const auto collection = make_bundle_collection(1, 8, 10);
  Simulator sim(collection, priority_config());
  std::vector<LaunchSpec> specs;
  for (PathId id = 0; id < 8; ++id)
    specs.push_back(spec(id, id % 3, 0, 4, id + 1));
  const auto result = sim.run(specs);
  EXPECT_TRUE(result.worms[7].delivered_intact());
}

TEST(SimulatorPriority, SimultaneousEntrantsHighestWins) {
  const auto collection = make_bundle_collection(1, 3, 6);
  Simulator sim(collection, priority_config());
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 3, 2), spec(1, 0, 0, 3, 7), spec(2, 0, 0, 3, 4)});
  EXPECT_EQ(result.worms[0].status, WormStatus::Killed);
  EXPECT_TRUE(result.worms[1].delivered_intact());
  EXPECT_EQ(result.worms[2].status, WormStatus::Killed);
  EXPECT_EQ(result.worms[0].blocked_by, 1u);
  EXPECT_EQ(result.worms[2].blocked_by, 1u);
}

TEST(SimulatorPriority, TriangleDeadlockBrokenByPriorities) {
  // Under serve-first, three equal-delay worms on a triangle structure
  // eliminate each other cyclically. Under the priority rule the top rank
  // must always get through (no blocking cycles — Claim 2.6).
  const std::uint32_t L = 4;
  const auto collection = make_triangle_collection(1, 8, L);

  SimConfig serve_first;
  Simulator sf(collection, serve_first);
  std::vector<LaunchSpec> specs;
  for (PathId id = 0; id < 3; ++id) specs.push_back(spec(id, 0, 0, L, id + 1));
  const auto sf_result = sf.run(specs);
  EXPECT_EQ(sf_result.metrics.delivered, 0u);
  EXPECT_EQ(sf_result.metrics.killed, 3u);

  Simulator prio(collection, priority_config());
  const auto prio_result = prio.run(specs);
  EXPECT_GE(prio_result.metrics.delivered, 1u);
  EXPECT_TRUE(prio_result.worms[2].delivered_intact());
}

TEST(SimulatorPriority, DoubleTruncationKeepsShortestRemnant) {
  // w0 is cut twice: first far downstream, then upstream. The delivered
  // remnant is bounded by the earliest cut's survivors.
  const auto graph = make_chain(10);
  PathCollection collection(graph);
  const std::vector<NodeId> full{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  collection.add(Path::from_nodes(*graph, full));
  // w1 joins deep (cuts at link 6), w2 joins early (cuts at link 1).
  collection.add(
      Path::from_nodes(*graph, std::vector<NodeId>{6, 7, 8, 9}));
  collection.add(
      Path::from_nodes(*graph, std::vector<NodeId>{1, 2, 3, 4}));

  // Give the joiners their own entry edges so they can reach the chain.
  // (Paths start on the chain itself: they inject directly at nodes 6/1.)
  Simulator sim(collection, priority_config());
  // w0 rank 1, L=8, starts 0: enters link 6 at t=6 and occupies it [6,13].
  // w1 rank 9 injects at node 6 at t=8 -> cuts w0 at link 6, remnant 2.
  // w2 rank 5 injects at node 1 at t=4 -> w0 entered link 1 at t=1,
  // occupied [1,8]: cut at t=4, remnant 3.
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 8, 1), spec(1, 8, 0, 8, 9), spec(2, 4, 0, 8, 5)});
  EXPECT_TRUE(result.worms[0].truncated);
  EXPECT_EQ(result.metrics.truncated, 2u);
  // Head entered last link (8) at t=8; final remnant is min(2, 3) = 2, so
  // it drains at 8 + 2 - 1 = 9.
  EXPECT_EQ(result.worms[0].finish_time, 9);
}

}  // namespace
}  // namespace opto
