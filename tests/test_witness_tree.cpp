// Witness-tree probability evaluators: monotonicity and limiting shapes
// matching the §2.1 / §3.1 formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "opto/analysis/witness_tree.hpp"

namespace opto {
namespace {

WitnessTreeParams params(std::uint32_t n, std::uint32_t D, std::uint32_t C,
                         std::uint32_t L, std::uint16_t B, SimTime delta) {
  WitnessTreeParams p;
  p.shape.size = n;
  p.shape.dilation = D;
  p.shape.path_congestion = C;
  p.shape.worm_length = L;
  p.shape.bandwidth = B;
  p.delta = [delta](std::uint32_t) { return delta; };
  return p;
}

TEST(WitnessTree, BoundIsAtMostOne) {
  const auto p = params(1024, 16, 64, 4, 1, 64);
  EXPECT_LE(log2_embedding_bound_leveled(p, 3, 4), 0.0);
  EXPECT_LE(log2_embedding_bound_shortcut_free(p, 3, 4), 0.0);
}

TEST(WitnessTree, LargerDeltaShrinksBound) {
  const auto small = params(1024, 16, 64, 4, 1, 64);
  const auto large = params(1024, 16, 64, 4, 1, 4096);
  EXPECT_LE(log2_embedding_bound_leveled(large, 4, 8),
            log2_embedding_bound_leveled(small, 4, 8));
  EXPECT_LE(log2_embedding_bound_shortcut_free(large, 4, 8),
            log2_embedding_bound_shortcut_free(small, 4, 8));
}

TEST(WitnessTree, DeeperTreesAreLessLikely) {
  // With Δ big enough that each level multiplies probability < 1, deeper
  // witness trees must be rarer.
  const auto p = params(1 << 16, 8, 128, 4, 1, 1 << 14);
  EXPECT_LT(log2_embedding_bound_leveled(p, 8, 4),
            log2_embedding_bound_leveled(p, 4, 4));
  EXPECT_LT(log2_embedding_bound_shortcut_free(p, 8, 4),
            log2_embedding_bound_shortcut_free(p, 4, 4));
}

TEST(WitnessTree, K0MatchesFormula) {
  ProblemShape s;
  s.size = 1 << 10;
  s.dilation = 12;
  s.path_congestion = 48;
  s.worm_length = 4;
  s.bandwidth = 2;
  const double expected =
      3.0 * 10.0 / std::log2(2.0 + 2.0 * (12.0 / 4.0 + 1.0) / (16.0 * 48.0)) +
      1.0;
  EXPECT_NEAR(witness_k0(s, 1.0), expected, 1e-9);
}

TEST(WitnessTree, FailureProbabilityDecreasesWithRounds) {
  const auto p = params(1 << 12, 8, 256, 4, 1, 1 << 13);
  const double few = failure_probability_bound(p, 4, /*leveled=*/true);
  const double many = failure_probability_bound(p, 12, /*leveled=*/true);
  EXPECT_LE(many, few);
  EXPECT_GE(few, 0.0);
  EXPECT_LE(few, 1.0);
}

TEST(WitnessTree, ShortcutFreeNeedsMoreRounds) {
  // At equal (t, k) the short-cut-free bound decays only linearly in t
  // while the leveled bound decays quadratically.
  const auto p = params(1 << 16, 8, 128, 4, 1, 1 << 12);
  const double lev8 = log2_embedding_bound_leveled(p, 8, 2);
  const double scf8 = log2_embedding_bound_shortcut_free(p, 8, 2);
  EXPECT_LT(lev8, scf8);
}

}  // namespace
}  // namespace opto
