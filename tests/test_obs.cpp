// Observability primitives: counter/timer/annotation recording, the
// runtime enable switch, cross-thread aggregation, the allocation hook —
// and the invariant that observing a run never changes its outcome.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "opto/core/trial_and_failure.hpp"
#include "opto/benchsupport/experiment.hpp"
#include "opto/obs/obs.hpp"
#include "opto/paths/lowerbound_structures.hpp"

namespace opto {
namespace {

std::uint64_t counter_value(const std::string& name) {
  for (const auto& snapshot : obs::counters())
    if (snapshot.name == name) return snapshot.value;
  return 0;
}

const obs::PhaseSnapshot* find_phase(
    const std::vector<obs::PhaseSnapshot>& phases, const std::string& name) {
  for (const auto& phase : phases)
    if (phase.name == name) return &phase;
  return nullptr;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(true);
    obs::reset();
  }
};

TEST_F(ObsTest, CounterAccumulatesAndSurvivesReset) {
  static obs::Counter counter("test.obs.basic");
  counter.add(3);
  counter.add(4);
  EXPECT_EQ(counter_value("test.obs.basic"), 7u);

  obs::reset();
  // The name stays registered (it is part of the schema) but the value
  // zeroes.
  EXPECT_EQ(counter_value("test.obs.basic"), 0u);
  counter.add(1);
  EXPECT_EQ(counter_value("test.obs.basic"), 1u);
}

TEST_F(ObsTest, DisabledCounterRecordsNothing) {
  static obs::Counter counter("test.obs.disabled");
  obs::set_enabled(false);
  counter.add(100);
  obs::set_enabled(true);
  EXPECT_EQ(counter_value("test.obs.disabled"), 0u);
  counter.add(2);
  EXPECT_EQ(counter_value("test.obs.disabled"), 2u);
}

TEST_F(ObsTest, ScopedTimerCountsCallsAndNestsInclusively) {
  {
    const obs::ScopedTimer outer("test.obs.outer");
    for (int i = 0; i < 3; ++i) {
      const obs::ScopedTimer inner("test.obs.inner");
      // Burn a little CPU so the inner wall time is nonzero even on
      // coarse clocks.
      volatile double sink = 0;
      for (int j = 0; j < 50000; ++j) sink = sink + j;
    }
  }
  const auto phases = obs::phases();
  const auto* outer = find_phase(phases, "test.obs.outer");
  const auto* inner = find_phase(phases, "test.obs.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 1u);
  EXPECT_EQ(inner->calls, 3u);
  // Inclusive semantics: the outer scope contains all inner time.
  EXPECT_GE(outer->wall_ns, inner->wall_ns);
}

TEST_F(ObsTest, DisabledTimerRecordsNothing) {
  obs::set_enabled(false);
  { const obs::ScopedTimer timer("test.obs.dark"); }
  obs::set_enabled(true);
  EXPECT_EQ(find_phase(obs::phases(), "test.obs.dark"), nullptr);
}

TEST_F(ObsTest, CountersAggregateAcrossThreads) {
  static obs::Counter counter("test.obs.threads");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < kAdds; ++i) counter.add(1);
    });
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(counter_value("test.obs.threads"),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(ObsTest, AnnotationLastWriteWins) {
  obs::annotate("test.key", "first");
  obs::annotate("test.key", "second");
  const auto annotations = obs::annotations();
  const auto it = annotations.find("test.key");
  ASSERT_NE(it, annotations.end());
  EXPECT_EQ(it->second, "second");
}

TEST_F(ObsTest, AllocationsAreCounted) {
  const std::uint64_t before = obs::alloc_count();
  std::vector<std::unique_ptr<int>> keep;
  for (int i = 0; i < 64; ++i) keep.push_back(std::make_unique<int>(i));
  EXPECT_GE(obs::alloc_count(), before + 64);
}

TEST_F(ObsTest, ProcessWallAdvances) {
  EXPECT_GT(obs::process_wall_seconds(), 0.0);
}

// The load-bearing invariant: observation must never perturb results.
// Same workload, obs on vs off, bit-identical protocol outcome.
TEST_F(ObsTest, ObservationDoesNotChangeOutcomes) {
  const auto run_once = [] {
    const auto collection = make_bundle_collection(1, 8, 10);
    ProtocolConfig config;
    config.bandwidth = 2;
    config.worm_length = 4;
    config.max_rounds = 100;
    const auto schedule = paper_schedule_factory(4, 2)(collection);
    TrialAndFailure protocol(collection, config, *schedule);
    return protocol.run(/*seed=*/12345);
  };

  obs::set_enabled(true);
  const ProtocolResult observed = run_once();
  obs::set_enabled(false);
  const ProtocolResult dark = run_once();
  obs::set_enabled(true);

  EXPECT_EQ(observed.success, dark.success);
  EXPECT_EQ(observed.rounds_used, dark.rounds_used);
  EXPECT_EQ(observed.total_charged_time, dark.total_charged_time);
  EXPECT_EQ(observed.total_actual_time, dark.total_actual_time);
  EXPECT_EQ(observed.duplicate_deliveries, dark.duplicate_deliveries);
  ASSERT_EQ(observed.rounds.size(), dark.rounds.size());
  for (std::size_t i = 0; i < observed.rounds.size(); ++i) {
    EXPECT_EQ(observed.rounds[i].delivered, dark.rounds[i].delivered);
    EXPECT_EQ(observed.rounds[i].fault_losses, dark.rounds[i].fault_losses);
    EXPECT_EQ(observed.rounds[i].contention_losses,
              dark.rounds[i].contention_losses);
  }
}

}  // namespace
}  // namespace opto
