// Canonical-form invariants of the scenario DSL:
//  - every committed examples/*.opto dump matches its committed golden
//    (byte-compare — the same check the scenario-smoke CI job runs),
//  - parse -> canonical dump -> parse is a fixed point on the examples
//    and on hundreds of generated programs,
//  - the (seed, index) program generator is deterministic, and mutated
//    programs always terminate in a clean parse or a diagnostic.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "opto/dsl/canonical.hpp"
#include "opto/dsl/validate.hpp"
#include "opto/testlib/dsl_gen.hpp"

namespace opto::dsl {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::filesystem::path> committed_examples() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(OPTO_EXAMPLES_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".opto")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Parses `text`, dumps, reloads the dump, dumps again; returns the
/// first dump after asserting both are identical.
std::string require_fixed_point(const std::string& text,
                                const std::string& name) {
  ScenarioSpec spec;
  DslError error;
  EXPECT_TRUE(load_opto_text(text, name, spec, error))
      << name << ": " << error.format();
  const std::string dump = canonical_text(spec);
  ScenarioSpec reloaded;
  EXPECT_TRUE(load_scenario_text(dump, name + ".json", reloaded, error))
      << name << ": dump does not reload: " << error.format();
  EXPECT_EQ(canonical_text(reloaded), dump)
      << name << ": parse -> dump -> parse is not a fixed point";
  return dump;
}

TEST(DslCanonical, CommittedExamplesMatchTheirGoldens) {
  const auto files = committed_examples();
  ASSERT_GE(files.size(), 10u) << "examples/ lost committed scenarios";
  for (const auto& file : files) {
    const std::string name = file.filename().string();
    const std::string dump = require_fixed_point(slurp(file.string()), name);
    std::filesystem::path golden =
        std::filesystem::path(OPTO_EXAMPLES_DIR) / "golden" /
        file.stem().concat(".json");
    ASSERT_TRUE(std::filesystem::exists(golden))
        << name << " has no golden dump (regenerate with opto_run --dump)";
    EXPECT_EQ(dump, slurp(golden.string()))
        << name << " drifted from examples/golden/" << golden.filename();
  }
}

TEST(DslCanonical, GeneratedProgramsAreValidFixedPoints) {
  std::uint64_t with_strategy = 0, with_fattree = 0, with_bcube = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::string program = testlib::generate_program(7, i);
    require_fixed_point(program, "gen-" + std::to_string(i));
    if (testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing program:\n" << program;
      break;
    }
    if (program.find("  strategy ") != std::string::npos) ++with_strategy;
    if (program.find("topology fattree") != std::string::npos) ++with_fattree;
    if (program.find("topology bcube") != std::string::npos) ++with_bcube;
  }
  // The generator must keep exercising the strategy/topology surface the
  // validator grew in the RWA layer, or the grammar fuzz gate goes blind
  // to it.
  EXPECT_GE(with_strategy, 10u);
  EXPECT_GE(with_fattree, 10u);
  EXPECT_GE(with_bcube, 10u);
}

TEST(DslCanonical, GeneratorIsPureInSeedAndIndex) {
  EXPECT_EQ(testlib::generate_program(7, 3), testlib::generate_program(7, 3));
  EXPECT_NE(testlib::generate_program(7, 3), testlib::generate_program(7, 4));
  EXPECT_NE(testlib::generate_program(7, 3), testlib::generate_program(8, 3));
  EXPECT_EQ(testlib::mutate_program(7, 3), testlib::mutate_program(7, 3));
}

TEST(DslCanonical, MutatedProgramsFailCleanlyOrRoundTrip) {
  std::uint64_t accepted = 0, rejected = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::string mutant = testlib::mutate_program(7, i);
    ScenarioSpec spec;
    DslError error;
    if (load_opto_text(mutant, "mut", spec, error)) {
      ++accepted;
      require_fixed_point(mutant, "mut-" + std::to_string(i));
    } else {
      ++rejected;
      EXPECT_FALSE(error.message.empty())
          << "rejection without a diagnostic for mutant " << i;
    }
    if (testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing mutant:\n" << mutant;
      break;
    }
  }
  // The mutator must actually break most programs or it tests nothing.
  EXPECT_GT(rejected, accepted);
}

TEST(DslCanonical, JsonLoaderRejectsUnknownKeysAndWrongSchema) {
  ScenarioSpec spec;
  DslError error;
  EXPECT_FALSE(load_scenario_text(R"({"schema":"opto.other","mode":"trials"})",
                                  "doc", spec, error));
  EXPECT_FALSE(load_scenario_text(
      R"({"schema":"opto.scenario","schema_version":1,"mode":"trials",)"
      R"("label":"x","name":"x","seed":"1","surprise":1,)"
      R"("topology":{"family":"ring","nodes":4},)"
      R"("paths":{"system":"bfs","workload":"permutation"}})",
      "doc", spec, error));
  EXPECT_NE(error.message.find("surprise"), std::string::npos)
      << error.format();
}

}  // namespace
}  // namespace opto::dsl
