// Every examples/repros/*.opto is a corpus anchor in scenario clothing:
// its pass-mode spec must map to a FuzzCase whose canonical JSON
// byte-equals the committed tests/corpus/<same-stem>.json, and running
// it must reproduce the same engine outcome the corpus replay pins
// (clean differential verdict + identical pass metrics).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "opto/dsl/runner.hpp"
#include "opto/dsl/validate.hpp"
#include "opto/testlib/differ.hpp"
#include "opto/testlib/fuzz_case.hpp"

namespace opto::dsl {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::filesystem::path> repro_scenarios() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::string(OPTO_EXAMPLES_DIR) + "/repros")) {
    if (entry.is_regular_file() && entry.path().extension() == ".opto")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(DslRepros, EveryCorpusAnchorHasAScenarioTwin) {
  std::vector<std::string> corpus_stems;
  for (const auto& entry :
       std::filesystem::directory_iterator(OPTO_CORPUS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json")
      corpus_stems.push_back(entry.path().stem().string());
  }
  ASSERT_FALSE(corpus_stems.empty());
  for (const std::string& stem : corpus_stems) {
    EXPECT_TRUE(std::filesystem::exists(std::string(OPTO_EXAMPLES_DIR) +
                                        "/repros/" + stem + ".opto"))
        << "corpus anchor " << stem << ".json has no examples/repros twin";
  }
}

TEST(DslRepros, ScenarioTwinsByteMatchTheirCorpusAnchors) {
  const auto files = repro_scenarios();
  ASSERT_FALSE(files.empty());
  for (const auto& file : files) {
    const std::string stem = file.stem().string();
    const std::string corpus_path =
        std::string(OPTO_CORPUS_DIR) + "/" + stem + ".json";
    ASSERT_TRUE(std::filesystem::exists(corpus_path))
        << file << " has no corpus anchor";

    ScenarioSpec spec;
    DslError error;
    ASSERT_TRUE(load_opto_text(slurp(file.string()), stem, spec, error))
        << error.format();
    ASSERT_EQ(spec.mode, ScenarioMode::Pass) << stem;
    EXPECT_EQ(testlib::canonical_json(to_fuzz_case(spec)),
              slurp(corpus_path))
        << stem << ".opto no longer maps to its corpus anchor bytes";
  }
}

TEST(DslRepros, ScenarioTwinsReproduceTheAnchoredOutcome) {
  for (const auto& file : repro_scenarios()) {
    const std::string stem = file.stem().string();
    ScenarioSpec spec;
    DslError error;
    ASSERT_TRUE(load_opto_text(slurp(file.string()), stem, spec, error))
        << error.format();

    // Same differential verdict and metrics as replaying the JSON case.
    const testlib::FuzzCase from_dsl = to_fuzz_case(spec);
    const auto from_json = testlib::parse_case(
        slurp(std::string(OPTO_CORPUS_DIR) + "/" + stem + ".json"));
    ASSERT_TRUE(from_json.has_value()) << stem;
    const testlib::DiffReport dsl_report = testlib::diff_case(from_dsl);
    const testlib::DiffReport json_report = testlib::diff_case(*from_json);
    EXPECT_TRUE(dsl_report.ok()) << stem << "\n" << dsl_report.summary();
    EXPECT_EQ(dsl_report.metrics.delivered, json_report.metrics.delivered)
        << stem;
    EXPECT_EQ(dsl_report.metrics.killed, json_report.metrics.killed) << stem;
    EXPECT_EQ(dsl_report.metrics.truncated_arrivals,
              json_report.metrics.truncated_arrivals)
        << stem;

    // And the scenario runner itself executes the pass.
    JsonValue result;
    std::string run_error;
    ASSERT_TRUE(run_scenario(spec, result, run_error)) << run_error;
    EXPECT_NE(result_text(result).find("\"mode\":\"pass\""),
              std::string::npos);
  }
}

}  // namespace
}  // namespace opto::dsl
