// Streaming traffic engine: arrival generators, the event loop, the
// Erlang-B analytic cross-check, determinism, and memory bounds.
#include <gtest/gtest.h>

#include <memory>

#include "opto/engine/engine.hpp"
#include "opto/engine/traffic.hpp"
#include "opto/graph/ring.hpp"

namespace opto {
namespace {

// --- arrival generators -------------------------------------------------

TEST(ArrivalGenerator, PoissonMeanGapMatchesRate) {
  TrafficConfig config;
  config.process = ArrivalProcess::Poisson;
  config.rate = 4.0;
  ArrivalGenerator gen(config, 7);
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += gen.next_gap();
  EXPECT_NEAR(total / n, 1.0 / config.rate, 0.01);
  EXPECT_DOUBLE_EQ(mean_arrival_rate(config), 4.0);
}

TEST(ArrivalGenerator, MmppLongRunRateMatchesFormula) {
  TrafficConfig config;
  config.process = ArrivalProcess::Mmpp;
  config.rate = 2.0;
  config.mmpp_burst = 4.0;
  config.mmpp_calm = 0.25;
  config.mmpp_mean_dwell = 8.0;
  ArrivalGenerator gen(config, 11);
  double total = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) total += gen.next_gap();
  const double expected_rate = mean_arrival_rate(config);
  EXPECT_DOUBLE_EQ(expected_rate, 2.0 * (4.0 + 0.25) / 2.0);
  EXPECT_NEAR(static_cast<double>(n) / total, expected_rate,
              0.05 * expected_rate);
}

TEST(ArrivalGenerator, MmppIsBurstier) {
  // Squared coefficient of variation of the gaps: 1 for Poisson,
  // > 1 for a bursty MMPP at the same mean rate.
  TrafficConfig config;
  config.process = ArrivalProcess::Mmpp;
  config.rate = 1.0;
  config.mmpp_burst = 8.0;
  config.mmpp_calm = 0.125;
  config.mmpp_mean_dwell = 32.0;
  ArrivalGenerator gen(config, 13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double gap = gen.next_gap();
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_GT(variance / (mean * mean), 1.5);
}

TEST(ArrivalGenerator, TraceReplaysCyclically) {
  TrafficConfig config;
  config.process = ArrivalProcess::Trace;
  config.trace = {0.5, 1.0, 0.25};
  ArrivalGenerator gen(config, 1);
  for (int cycle = 0; cycle < 3; ++cycle)
    for (const double gap : config.trace)
      EXPECT_DOUBLE_EQ(gen.next_gap(), gap);
  EXPECT_NEAR(mean_arrival_rate(config), 3.0 / 1.75, 1e-12);
}

TEST(ArrivalGenerator, DeterministicInSeed) {
  TrafficConfig config;
  config.process = ArrivalProcess::Mmpp;
  ArrivalGenerator a(config, 99), b(config, 99), c(config, 100);
  bool all_equal_c = true;
  for (int i = 0; i < 1000; ++i) {
    const double ga = a.next_gap();
    EXPECT_DOUBLE_EQ(ga, b.next_gap());
    all_equal_c = all_equal_c && ga == c.next_gap();
  }
  EXPECT_FALSE(all_equal_c);
}

// --- engine -------------------------------------------------------------

/// Erlang-B loss probability for offered load rho on b servers, via the
/// standard stable recurrence E_k = rho·E_{k-1} / (k + rho·E_{k-1}).
double erlang_b(double rho, int b) {
  double e = 1.0;
  for (int k = 1; k <= b; ++k) e = rho * e / (k + rho * e);
  return e;
}

std::shared_ptr<const Graph> single_link_graph() {
  auto graph = std::make_shared<Graph>(2, "single-link");
  graph->add_edge(0, 1);
  return graph;
}

EngineConfig erlang_config(double erlangs_per_link, std::uint16_t bandwidth,
                           std::uint64_t arrivals) {
  EngineConfig config;
  config.protocol.bandwidth = bandwidth;
  // Two directed links; each ordered pair routes over its own fiber, so
  // each is an independent M/M/B/B system at rate/2 arrivals per unit
  // time.
  config.traffic.process = ArrivalProcess::Poisson;
  config.traffic.rate = 2.0 * erlangs_per_link;
  config.mean_holding_time = 1.0;
  config.round_interval = 0.01;  // decision delay ≪ holding time
  config.arrivals = arrivals;
  config.warmup = arrivals / 10;
  return config;
}

TEST(Engine, ErlangBCrossCheck) {
  // Acceptance bar: within 2% relative error of E(6, 8) ≈ 0.1217 at B=8.
  const double rho = 6.0;
  const auto analytic = erlang_b(rho, 8);
  Engine engine(single_link_graph(), erlang_config(rho, 8, 400000), 42);
  const auto result = engine.run();
  EXPECT_GT(result.offered, 300000u);
  EXPECT_NEAR(result.blocking_probability, analytic, 0.02 * analytic);
}

TEST(Engine, ErlangBLightLoad) {
  // Second operating point, away from the acceptance one: E(2, 4).
  const double rho = 2.0;
  const auto analytic = erlang_b(rho, 4);
  Engine engine(single_link_graph(), erlang_config(rho, 4, 300000), 7);
  const auto result = engine.run();
  EXPECT_NEAR(result.blocking_probability, analytic, 0.05 * analytic);
}

EngineConfig ring_config(double rate, std::uint16_t bandwidth,
                         std::uint64_t arrivals) {
  EngineConfig config;
  config.protocol.bandwidth = bandwidth;
  config.traffic.rate = rate;
  config.round_interval = 0.02;
  config.arrivals = arrivals;
  config.warmup = arrivals / 10;
  return config;
}

TEST(Engine, DeterministicAcrossShardingModes) {
  // The trajectory is a pure function of the seed: every deterministic
  // result field must match bit-for-bit between a force-single and a
  // force-sharded run (the thread-count half of the determinism story;
  // CI byte-compares whole BenchRecords across OPTO_THREADS).
  auto ring = std::make_shared<Graph>(make_ring(8));
  EngineConfig config = ring_config(24.0, 4, 20000);
  config.protocol.sharding = PassSharding::Off;
  Engine single(ring, config, 5);
  const auto a = single.run();
  config.protocol.sharding = PassSharding::On;
  Engine sharded(ring, config, 5);
  const auto b = sharded.run();

  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.conflict_readmits, b.conflict_readmits);
  EXPECT_EQ(a.duplicate_deliveries, b.duplicate_deliveries);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.peak_active, b.peak_active);
  EXPECT_EQ(a.blocking_probability, b.blocking_probability);
  EXPECT_EQ(a.mean_setup_rounds, b.mean_setup_rounds);
  EXPECT_EQ(a.p50_setup_rounds, b.p50_setup_rounds);
  EXPECT_EQ(a.p99_setup_rounds, b.p99_setup_rounds);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
}

TEST(Engine, MemoryBoundedByActiveConnections) {
  // Steady state: the connection table's high-water mark tracks the
  // number of concurrently active connections, not total arrivals.
  auto ring = std::make_shared<Graph>(make_ring(8));
  Engine engine(ring, ring_config(16.0, 4, 50000), 3);
  const auto result = engine.run();
  EXPECT_GT(result.admitted, 10000u);
  // ~16 circuits in flight on average; orders of magnitude below 50k.
  EXPECT_LT(result.peak_active, 500u);
}

TEST(Engine, BlockingMonotoneInLoad) {
  auto ring = std::make_shared<Graph>(make_ring(8));
  double previous = -1.0;
  for (const double rate : {8.0, 32.0, 128.0}) {
    Engine engine(ring, ring_config(rate, 4, 30000), 9);
    const auto result = engine.run();
    EXPECT_GE(result.blocking_probability, previous);
    previous = result.blocking_probability;
  }
  EXPECT_GT(previous, 0.1);  // heavy load visibly blocks
}

TEST(Engine, ConversionReducesBlocking) {
  auto ring = std::make_shared<Graph>(make_ring(8));
  EngineConfig config = ring_config(48.0, 4, 30000);
  Engine plain(ring, config, 21);
  const auto without = plain.run();
  config.protocol.conversion = ConversionMode::Full;
  Engine converting(ring, config, 21);
  const auto with = converting.run();
  EXPECT_LT(with.blocking_probability, without.blocking_probability);
  EXPECT_GT(without.blocking_probability, 0.05);
}

TEST(Engine, LatencyQuantilesOrderedAndPositive) {
  auto ring = std::make_shared<Graph>(make_ring(8));
  Engine engine(ring, ring_config(32.0, 4, 20000), 17);
  const auto result = engine.run();
  EXPECT_GE(result.p50_setup_rounds, 1.0);
  EXPECT_GE(result.p99_setup_rounds, result.p50_setup_rounds);
  EXPECT_GE(result.mean_setup_rounds, 1.0);
  EXPECT_GE(result.p99_setup_wall_ns, result.p50_setup_wall_ns);
  EXPECT_GT(result.requests_per_s, 0.0);
  EXPECT_GT(result.sim_duration, 0.0);
  EXPECT_EQ(result.offered, result.admitted + result.blocked);
}

TEST(Engine, MmppBlocksMoreThanPoissonAtSameMeanRate) {
  // Burstiness hurts: at matched long-run offered load, the MMPP's
  // burst periods overload the link and its calm periods waste it.
  const double rho = 5.0;
  EngineConfig poisson = erlang_config(rho, 6, 120000);
  Engine a(single_link_graph(), poisson, 31);
  const auto smooth = a.run();

  EngineConfig bursty = poisson;
  bursty.traffic.process = ArrivalProcess::Mmpp;
  bursty.traffic.mmpp_burst = 4.0;
  bursty.traffic.mmpp_calm = 0.25;
  bursty.traffic.mmpp_mean_dwell = 8.0;
  // Match the long-run rate: λ·(burst+calm)/2 = poisson rate.
  bursty.traffic.rate =
      poisson.traffic.rate / ((4.0 + 0.25) / 2.0);
  Engine b(single_link_graph(), bursty, 31);
  const auto burst = b.run();

  EXPECT_GT(burst.blocking_probability, smooth.blocking_probability * 1.2);
}

TEST(Engine, TraceDrivenRunIsExact) {
  // A trace far apart in time with holding ≪ gap: nothing ever blocks.
  auto graph = single_link_graph();
  EngineConfig config;
  config.protocol.bandwidth = 2;
  config.traffic.process = ArrivalProcess::Trace;
  config.traffic.trace = {1.0};
  config.mean_holding_time = 0.05;
  config.round_interval = 0.05;
  config.arrivals = 3000;
  config.warmup = 100;
  Engine engine(graph, config, 2);
  const auto result = engine.run();
  EXPECT_EQ(result.blocked, 0u);
  EXPECT_EQ(result.admitted, result.offered);
  EXPECT_LE(result.peak_active, 4u);
}

}  // namespace
}  // namespace opto
