#include <gtest/gtest.h>

#include <sstream>

#include "opto/util/table.hpp"

namespace opto {
namespace {

TEST(Table, PrintsAlignedRows) {
  Table table("demo");
  table.set_header({"name", "value"});
  table.row().cell("alpha").cell(42LL);
  table.row().cell("b").cell(3.5);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| alpha | 42"), std::string::npos);
  EXPECT_NE(out.find("3.5"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, CsvEscaping) {
  Table table("csv");
  table.set_header({"a", "b"});
  table.add_row({"x,y", "say \"hi\""});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, FormatNumberTrimsNoise) {
  EXPECT_EQ(Table::format_number(42.0), "42");
  EXPECT_EQ(Table::format_number(0.125), "0.125");
  EXPECT_EQ(Table::format_number(1234567.0), "1.23457e+06");
}

TEST(Table, RowBuilderMixedTypes) {
  Table table("mixed");
  table.set_header({"i", "u", "d", "s"});
  table.row().cell(-3).cell(std::size_t{7}).cell(2.5).cell("txt");
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "i,u,d,s\n-3,7,2.5,txt\n");
}

TEST(TableDeath, MismatchedRowWidth) {
  Table table("bad");
  table.set_header({"one"});
  EXPECT_DEATH(table.add_row({"a", "b"}), "row width");
}

}  // namespace
}  // namespace opto
