// Golden-file diagnostics: every malformed program in tests/dsl_bad/
// must be rejected with the exact file:line:col + message committed in
// its sibling .expected file. Pinning the bytes (not just "an error")
// keeps source locations honest — an off-by-one in the lexer's column
// tracking or a reworded message shows up as a named diff here.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "opto/dsl/validate.hpp"

namespace opto::dsl {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string rstrip(std::string text) {
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
    text.pop_back();
  return text;
}

std::vector<std::filesystem::path> bad_programs() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(OPTO_DSL_BAD_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".opto")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(DslParser, EveryBadProgramMatchesItsGoldenDiagnostic) {
  const auto files = bad_programs();
  ASSERT_GE(files.size(), 12u) << "tests/dsl_bad/ must keep >= 12 cases";
  for (const auto& file : files) {
    const std::string name = file.filename().string();
    std::filesystem::path expected_path = file;
    expected_path.replace_extension(".expected");
    ASSERT_TRUE(std::filesystem::exists(expected_path))
        << name << " has no .expected golden";
    const std::string expected = rstrip(slurp(expected_path.string()));

    ScenarioSpec spec;
    DslError error;
    ASSERT_FALSE(load_opto_text(slurp(file.string()), name, spec, error))
        << name << " parsed cleanly but is a committed bad program";
    EXPECT_EQ(error.format(), expected) << "diagnostic drifted for " << name;
  }
}

TEST(DslParser, DiagnosticsCarrySourceLocations) {
  for (const auto& file : bad_programs()) {
    const std::string name = file.filename().string();
    ScenarioSpec spec;
    DslError error;
    ASSERT_FALSE(load_opto_text(slurp(file.string()), name, spec, error));
    EXPECT_GE(error.loc.line, 1u) << name;
    EXPECT_GE(error.loc.col, 1u) << name;
    EXPECT_FALSE(error.message.empty()) << name;
    // format() is "file:line:col: message".
    EXPECT_EQ(error.format().rfind(name + ":", 0), 0u) << error.format();
  }
}

TEST(DslParser, ValidProgramReportsNoError) {
  const std::string program =
      "scenario \"ok\" {\n"
      "  mode trials;\n"
      "  topology ring { nodes 8; }\n"
      "  paths bfs { workload permutation; }\n"
      "}\n";
  ScenarioSpec spec;
  DslError error;
  ASSERT_TRUE(load_opto_text(program, "ok.opto", spec, error))
      << error.format();
  EXPECT_EQ(spec.mode, ScenarioMode::Trials);
  EXPECT_EQ(spec.topology.family, "ring");
  EXPECT_EQ(spec.topology.nodes, 8u);
  EXPECT_EQ(spec.label, "ok");  // defaults to the slugified name
}

}  // namespace
}  // namespace opto::dsl
