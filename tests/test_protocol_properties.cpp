// Protocol-level property sweeps: invariants of TrialAndFailure across
// (rule, ack mode, conversion, bandwidth) on randomized workloads.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "opto/core/trial_and_failure.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/workloads.hpp"

namespace opto {
namespace {

using Params = std::tuple<ContentionRule, AckMode, ConversionMode, int>;

class ProtocolProperties : public ::testing::TestWithParam<Params> {
 protected:
  ProtocolConfig config() const {
    ProtocolConfig cfg;
    cfg.rule = std::get<0>(GetParam());
    cfg.ack_mode = std::get<1>(GetParam());
    cfg.conversion = std::get<2>(GetParam());
    cfg.bandwidth = static_cast<std::uint16_t>(std::get<3>(GetParam()));
    cfg.worm_length = 4;
    cfg.max_rounds = 500;
    cfg.keep_round_outcomes = true;
    return cfg;
  }

  PathCollection workload(std::uint64_t seed) const {
    auto topo = std::make_shared<MeshTopology>(make_torus({4, 4}));
    Rng rng(seed);
    return mesh_random_function(topo, rng);
  }
};

TEST_P(ProtocolProperties, EventuallyDeliversEverything) {
  const auto collection = workload(11);
  PaperSchedule schedule([&] {
    ProblemShape shape;
    shape.size = collection.size();
    shape.dilation = collection.dilation();
    shape.path_congestion = collection.path_congestion();
    shape.worm_length = 4;
    shape.bandwidth = config().bandwidth;
    return shape;
  }());
  TrialAndFailure protocol(collection, config(), schedule);
  const auto result = protocol.run(31);
  EXPECT_TRUE(result.success);
  for (const std::uint32_t round : result.completion_round) {
    EXPECT_GE(round, 1u);
    EXPECT_LE(round, result.rounds_used);
  }
}

TEST_P(ProtocolProperties, RoundAccountingConsistent) {
  const auto collection = workload(13);
  FixedSchedule schedule(24);
  TrialAndFailure protocol(collection, config(), schedule);
  const auto result = protocol.run(37);
  ASSERT_TRUE(result.success);
  SimTime charged = 0;
  std::uint32_t acked = 0;
  for (const auto& report : result.rounds) {
    charged += report.charged_time;
    acked += report.acknowledged;
    // Launch set is exactly the not-yet-acknowledged worms.
    EXPECT_EQ(report.launched.size(), report.active_before);
    EXPECT_LE(report.acknowledged, report.active_before);
    EXPECT_LE(report.delivered + 0u, report.active_before);
    // Acked ⊆ delivered (an ack needs a delivery first).
    EXPECT_LE(report.acknowledged, report.delivered);
  }
  EXPECT_EQ(charged, result.total_charged_time);
  EXPECT_EQ(acked, collection.size());
}

TEST_P(ProtocolProperties, LaunchedSetsShrinkToEmpty) {
  const auto collection = workload(17);
  FixedSchedule schedule(24);
  TrialAndFailure protocol(collection, config(), schedule);
  const auto result = protocol.run(41);
  ASSERT_TRUE(result.success);
  std::set<PathId> previous;
  for (std::size_t r = 0; r < result.rounds.size(); ++r) {
    const std::set<PathId> current(result.rounds[r].launched.begin(),
                                   result.rounds[r].launched.end());
    EXPECT_EQ(current.size(), result.rounds[r].launched.size())
        << "duplicate launch in round " << r + 1;
    if (r > 0) {
      // Monotone: a retired worm never relaunches.
      for (const PathId id : current) EXPECT_TRUE(previous.count(id));
    }
    previous = current;
  }
}

TEST_P(ProtocolProperties, CompletionRoundMatchesRoundReports) {
  const auto collection = workload(19);
  FixedSchedule schedule(24);
  TrialAndFailure protocol(collection, config(), schedule);
  const auto result = protocol.run(43);
  ASSERT_TRUE(result.success);
  // A worm's completion round is the last round it was launched in.
  for (PathId id = 0; id < collection.size(); ++id) {
    const std::uint32_t done = result.completion_round[id];
    ASSERT_GE(done, 1u);
    const auto& launched = result.rounds[done - 1].launched;
    EXPECT_NE(std::find(launched.begin(), launched.end(), id),
              launched.end());
    if (done < result.rounds.size()) {
      const auto& later = result.rounds[done].launched;
      EXPECT_EQ(std::find(later.begin(), later.end(), id), later.end());
    }
  }
}

TEST_P(ProtocolProperties, DuplicatesOnlyWithSimulatedAcks) {
  const auto collection = workload(23);
  FixedSchedule schedule(16);
  TrialAndFailure protocol(collection, config(), schedule);
  const auto result = protocol.run(47);
  if (config().ack_mode == AckMode::Ideal) {
    EXPECT_EQ(result.duplicate_deliveries, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolProperties,
    ::testing::Combine(
        ::testing::Values(ContentionRule::ServeFirst, ContentionRule::Priority),
        ::testing::Values(AckMode::Ideal, AckMode::Simulated),
        ::testing::Values(ConversionMode::None, ConversionMode::Full),
        ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<Params>& info) {
      std::string name = std::get<0>(info.param) == ContentionRule::ServeFirst
                             ? "sf"
                             : "prio";
      name += std::get<1>(info.param) == AckMode::Ideal ? "_idealack"
                                                        : "_simack";
      name += std::get<2>(info.param) == ConversionMode::None ? "_noconv"
                                                              : "_conv";
      name += "_B" + std::to_string(std::get<3>(info.param));
      return name;
    });

}  // namespace
}  // namespace opto
