#include <gtest/gtest.h>

#include "opto/graph/graph_algo.hpp"
#include "opto/graph/random_regular.hpp"

namespace opto {
namespace {

TEST(RandomRegular, IsRegularAndSimple) {
  for (const std::uint32_t degree : {2u, 3u, 4u}) {
    const auto graph = make_random_regular(24, degree, 7);
    EXPECT_EQ(graph.node_count(), 24u);
    EXPECT_EQ(graph.undirected_edge_count(), 24u * degree / 2);
    for (NodeId u = 0; u < 24; ++u)
      EXPECT_EQ(graph.degree(u), degree) << "degree " << degree;
  }
}

TEST(RandomRegular, DeterministicInSeed) {
  const auto a = make_random_regular(20, 3, 42);
  const auto b = make_random_regular(20, 3, 42);
  const auto c = make_random_regular(20, 3, 43);
  bool same_ab = true, same_ac = true;
  for (NodeId u = 0; u < 20; ++u)
    for (NodeId v = u + 1; v < 20; ++v) {
      same_ab &= a.has_edge(u, v) == b.has_edge(u, v);
      same_ac &= a.has_edge(u, v) == c.has_edge(u, v);
    }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(RandomRegular, TypicallyConnectedAtDegree3) {
  // Random 3-regular graphs are connected w.h.p.; check several seeds.
  int connected = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    connected += is_connected(make_random_regular(30, 3, seed)) ? 1 : 0;
  EXPECT_GE(connected, 8);
}

TEST(RandomRegular, SmallDiameter) {
  // Near-expander: diameter O(log n) — generous cap.
  const auto graph = make_random_regular(64, 4, 5);
  if (is_connected(graph)) {
    EXPECT_LE(diameter(graph), 8u);
  }
}

TEST(RandomRegularDeath, RejectsOddStubCount) {
  EXPECT_DEATH(make_random_regular(5, 3, 1), "even");
}

}  // namespace
}  // namespace opto
