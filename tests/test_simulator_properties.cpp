// Property-based sweeps over (rule, tie policy, bandwidth, worm length):
// invariants of the engine on randomized workloads.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "opto/graph/mesh.hpp"
#include "opto/paths/dimension_order.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {
namespace {

using Params = std::tuple<ContentionRule, TiePolicy, int /*B*/, int /*L*/>;

class SimulatorProperties : public ::testing::TestWithParam<Params> {
 protected:
  SimConfig config() const {
    const auto& [rule, tie, bandwidth, length] = GetParam();
    SimConfig cfg;
    cfg.rule = rule;
    cfg.tie = tie;
    cfg.bandwidth = static_cast<std::uint16_t>(bandwidth);
    cfg.record_trace = true;
    return cfg;
  }

  std::uint32_t worm_length() const { return std::get<3>(GetParam()); }

  /// Random-function workload on a 4x4 torus with random delays in
  /// [0, spread) and random wavelengths; priorities are a permutation.
  std::pair<PathCollection, std::vector<LaunchSpec>> make_workload(
      std::uint64_t seed, SimTime spread) const {
    auto topo = std::make_shared<MeshTopology>(make_torus({4, 4}));
    Rng rng(seed);
    auto collection = mesh_random_function(topo, rng);
    const auto ranks = rng.permutation(collection.size());
    std::vector<LaunchSpec> specs(collection.size());
    for (PathId id = 0; id < collection.size(); ++id) {
      specs[id].path = id;
      specs[id].start_time =
          static_cast<SimTime>(rng.next_below(static_cast<std::uint64_t>(spread)));
      specs[id].wavelength = static_cast<Wavelength>(
          rng.next_below(config().bandwidth));
      specs[id].priority = ranks[id];
      specs[id].length = worm_length();
    }
    return {std::move(collection), std::move(specs)};
  }
};

TEST_P(SimulatorProperties, EveryWormResolves) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto [collection, specs] = make_workload(seed, 8);
    Simulator sim(collection, config());
    const auto result = sim.run(specs);
    std::uint64_t delivered_intact = 0, killed = 0, truncated_arrived = 0;
    for (const auto& worm : result.worms) {
      EXPECT_TRUE(worm.status == WormStatus::Delivered ||
                  worm.status == WormStatus::Killed);
      if (worm.status == WormStatus::Killed)
        ++killed;
      else if (worm.truncated)
        ++truncated_arrived;
      else
        ++delivered_intact;
    }
    EXPECT_EQ(delivered_intact + killed + truncated_arrived, specs.size());
    EXPECT_EQ(result.metrics.delivered, delivered_intact);
    EXPECT_EQ(result.metrics.killed, killed);
    EXPECT_EQ(result.metrics.truncated_arrivals, truncated_arrived);
    EXPECT_EQ(result.metrics.launched, specs.size());
  }
}

TEST_P(SimulatorProperties, Deterministic) {
  auto [collection, specs] = make_workload(7, 6);
  Simulator sim(collection, config());
  const auto a = sim.run(specs);
  const auto b = sim.run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(a.worms[i].status, b.worms[i].status);
    EXPECT_EQ(a.worms[i].finish_time, b.worms[i].finish_time);
    EXPECT_EQ(a.worms[i].truncated, b.worms[i].truncated);
  }
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
}

TEST_P(SimulatorProperties, MakespanBounded) {
  auto [collection, specs] = make_workload(11, 10);
  Simulator sim(collection, config());
  const auto result = sim.run(specs);
  // No event can happen after max_start + D + L.
  const SimTime horizon =
      10 + collection.dilation() + worm_length();
  EXPECT_LE(result.metrics.makespan, horizon);
}

TEST_P(SimulatorProperties, KilledWormsHaveOverlappingWitness) {
  auto [collection, specs] = make_workload(13, 4);
  Simulator sim(collection, config());
  const auto result = sim.run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (result.worms[i].status != WormStatus::Killed) continue;
    const WormId blocker = result.worms[i].blocked_by;
    ASSERT_NE(blocker, kInvalidWorm);
    ASSERT_LT(blocker, specs.size());
    EXPECT_NE(blocker, i);
    // Blocker's path must share the blocking link.
    const EdgeId blocked_link =
        collection.path(specs[i].path).link(result.worms[i].blocked_at_link);
    bool shares = false;
    for (EdgeId link : collection.path(specs[blocker].path).links())
      shares |= link == blocked_link;
    EXPECT_TRUE(shares) << "worm " << i << " blocked by " << blocker;
    // And on the same wavelength.
    EXPECT_EQ(specs[i].wavelength, specs[blocker].wavelength);
  }
}

TEST_P(SimulatorProperties, OccupancyExclusive) {
  // Reconstruct per-(link, wavelength) admission windows from the trace;
  // for non-truncated worms the full [t, t+L-1] windows of distinct worms
  // must be disjoint.
  auto [collection, specs] = make_workload(17, 5);
  Simulator sim(collection, config());
  const auto result = sim.run(specs);

  std::map<std::pair<EdgeId, Wavelength>,
           std::vector<std::pair<SimTime, WormId>>>
      admissions;
  for (const auto& event : result.trace.events())
    if (event.kind == TraceKind::Admit)
      admissions[{event.link, event.wavelength}].emplace_back(event.time,
                                                              event.worm);
  for (const auto& [key, list] : admissions) {
    for (std::size_t a = 0; a < list.size(); ++a) {
      if (result.worms[list[a].second].truncated) continue;
      for (std::size_t b = a + 1; b < list.size(); ++b) {
        if (result.worms[list[b].second].truncated) continue;
        if (list[a].second == list[b].second) continue;
        const SimTime lo_a = list[a].first, hi_a = lo_a + worm_length() - 1;
        const SimTime lo_b = list[b].first, hi_b = lo_b + worm_length() - 1;
        const bool disjoint = hi_a < lo_b || hi_b < lo_a;
        EXPECT_TRUE(disjoint)
            << "overlap on link " << key.first << " between worms "
            << list[a].second << " and " << list[b].second;
      }
    }
  }
}

TEST_P(SimulatorProperties, ServeFirstNeverTruncates) {
  if (std::get<0>(GetParam()) != ContentionRule::ServeFirst) GTEST_SKIP();
  auto [collection, specs] = make_workload(19, 4);
  Simulator sim(collection, config());
  const auto result = sim.run(specs);
  EXPECT_EQ(result.metrics.truncated, 0u);
  for (const auto& worm : result.worms) EXPECT_FALSE(worm.truncated);
}

TEST_P(SimulatorProperties, PriorityTopRankDelivers) {
  if (std::get<0>(GetParam()) != ContentionRule::Priority) GTEST_SKIP();
  auto [collection, specs] = make_workload(23, 4);
  Simulator sim(collection, config());
  const auto result = sim.run(specs);
  std::size_t top = 0;
  for (std::size_t i = 1; i < specs.size(); ++i)
    if (specs[i].priority > specs[top].priority) top = i;
  EXPECT_TRUE(result.worms[top].delivered_intact());
}

TEST_P(SimulatorProperties, WideBandwidthDeliversEverything) {
  // With more wavelengths than worms per link and distinct wavelengths per
  // overlapping pair we can't test easily; instead: single worm always
  // delivers regardless of parameters.
  auto topo = std::make_shared<MeshTopology>(make_torus({4, 4}));
  std::shared_ptr<const Graph> graph(topo, &topo->graph);
  PathCollection collection(graph);
  collection.add(dimension_order_path(*topo, 0, 15));
  Simulator sim(collection, config());
  LaunchSpec spec;
  spec.path = 0;
  spec.start_time = 3;
  spec.wavelength = 0;
  spec.length = worm_length();
  spec.priority = 1;
  const auto result = sim.run(std::vector<LaunchSpec>{spec});
  EXPECT_TRUE(result.worms[0].delivered_intact());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulatorProperties,
    ::testing::Combine(
        ::testing::Values(ContentionRule::ServeFirst, ContentionRule::Priority),
        ::testing::Values(TiePolicy::KillAll, TiePolicy::FirstWins),
        ::testing::Values(1, 2, 4),
        ::testing::Values(1, 3, 8)),
    [](const ::testing::TestParamInfo<Params>& info) {
      // No structured bindings here: commas inside [] would split the
      // macro arguments.
      std::string name = std::get<0>(info.param) == ContentionRule::ServeFirst
                             ? "sf"
                             : "prio";
      name += std::get<1>(info.param) == TiePolicy::KillAll ? "_killall"
                                                            : "_firstwins";
      name += "_B" + std::to_string(std::get<2>(info.param));
      name += "_L" + std::to_string(std::get<3>(info.param));
      return name;
    });

}  // namespace
}  // namespace opto
