// Counter-based RNG (rng/philox.hpp): the reference known-answer vector,
// the keying surface (distinct streams per (seed, round, worm, slot)),
// order/batch-shape independence, and the golden draws that pin
// cross-process byte-determinism. The protocol-level consequence — that
// TrialAndFailure::run_many over any batch shape reproduces sequential
// run() exactly — is covered here too, since it is the property the
// counter keying exists to provide.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "opto/core/trial_and_failure.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/rng/philox.hpp"

namespace opto {
namespace {

TEST(Philox, KnownAnswerZeroVector) {
  // Random123's philox4x32-10 test vector: zero key, zero counter.
  const Philox4x32::Counter out = Philox4x32::block(0, {0, 0, 0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, BlockIsPure) {
  const Philox4x32::Counter ctr{3, 141, 59, 265};
  const auto a = Philox4x32::block(0xdeadbeefULL, ctr);
  const auto b = Philox4x32::block(0xdeadbeefULL, ctr);
  EXPECT_EQ(a, b);
}

TEST(CounterRng, GoldenDraws) {
  // Frozen outputs for one (seed, round): any change to the algorithm,
  // the counter layout, or the domain constant breaks replayability of
  // every committed corpus case and baseline — this test is the tripwire.
  const CounterRng rng(0x123456789abcdef0ULL, 7);
  const struct {
    std::uint32_t worm;
    std::uint32_t slot;
    std::uint64_t expect;
  } golden[] = {
      {0, CounterRng::kSlotPriority, 0x2703ded87b8e01d9ULL},
      {0, CounterRng::kSlotStartDelay, 0x41f42dfb27a2d77eULL},
      {0, CounterRng::kSlotWavelength, 0x68808971b58f65bbULL},
      {0, CounterRng::kSlotAckWavelength, 0xfeb72aba9b2b6e8eULL},
      {1, CounterRng::kSlotPriority, 0xfef847450ec0fbd5ULL},
      {1, CounterRng::kSlotStartDelay, 0x4162ac4e71587f2aULL},
      {1, CounterRng::kSlotWavelength, 0x649b3eeccabcadbfULL},
      {1, CounterRng::kSlotAckWavelength, 0x9947d0aa041855a0ULL},
      {5, CounterRng::kSlotPriority, 0xf4211cc198440511ULL},
      {5, CounterRng::kSlotStartDelay, 0x09a5d8c2a97f7b77ULL},
      {5, CounterRng::kSlotWavelength, 0x0ef7c086ddf17af1ULL},
      {5, CounterRng::kSlotAckWavelength, 0x42c319c57a11decdULL},
  };
  for (const auto& g : golden)
    EXPECT_EQ(rng.at(g.worm, g.slot), g.expect)
        << "worm " << g.worm << " slot " << g.slot;
}

TEST(CounterRng, DistinctStreamsAcrossKeyingSurface) {
  // Every coordinate of (seed, round, worm, slot) must separate streams:
  // collect draws across a small grid and require all-distinct values.
  std::vector<std::uint64_t> draws;
  for (std::uint64_t seed : {1ULL, 2ULL, 0xffffffffffffffffULL})
    for (std::uint32_t round : {0u, 1u, 63u}) {
      const CounterRng rng(seed, round);
      for (std::uint32_t worm = 0; worm < 8; ++worm)
        for (std::uint32_t slot = 0; slot < 4; ++slot)
          draws.push_back(rng.at(worm, slot));
    }
  std::vector<std::uint64_t> sorted = draws;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "two keying tuples collided on a 64-bit draw";
}

TEST(CounterRng, DrawsAreOrderIndependent) {
  const CounterRng rng(42, 3);
  // Read a draw, then read a batch of others in scrambled order, then the
  // same draw again: a counter-based generator has no state to perturb.
  const std::uint64_t first = rng.at(17, CounterRng::kSlotWavelength);
  for (std::uint32_t worm = 30; worm > 0; --worm)
    (void)rng.at(worm, worm % 4);
  EXPECT_EQ(rng.at(17, CounterRng::kSlotWavelength), first);
}

TEST(CounterRng, BelowIsBoundedAndCoversSmallRanges) {
  const CounterRng rng(7, 11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL}) {
    std::vector<bool> seen(bound, false);
    for (std::uint32_t worm = 0; worm < 512; ++worm) {
      const std::uint64_t v = rng.below(bound, worm, CounterRng::kSlotPriority);
      ASSERT_LT(v, bound);
      seen[v] = true;
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }))
        << "bound " << bound << " left a value undrawn over 512 worms";
  }
}

// --- Protocol-level batch-shape invariance -------------------------------

ProtocolConfig small_config() {
  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 3;
  config.max_rounds = 200;
  return config;
}

ProblemShape shape_of(const PathCollection& collection) {
  ProblemShape shape;
  shape.size = collection.size();
  shape.dilation = collection.dilation();
  shape.path_congestion = collection.path_congestion();
  shape.worm_length = 3;
  shape.bandwidth = 2;
  return shape;
}

void expect_same_result(const ProtocolResult& a, const ProtocolResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
  EXPECT_EQ(a.total_charged_time, b.total_charged_time);
  EXPECT_EQ(a.total_actual_time, b.total_actual_time);
  EXPECT_EQ(a.completion_round, b.completion_round);
  EXPECT_EQ(a.duplicate_deliveries, b.duplicate_deliveries);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].delta, b.rounds[r].delta);
    EXPECT_EQ(a.rounds[r].active_before, b.rounds[r].active_before);
    EXPECT_EQ(a.rounds[r].delivered, b.rounds[r].delivered);
    EXPECT_EQ(a.rounds[r].acknowledged, b.rounds[r].acknowledged);
    EXPECT_EQ(a.rounds[r].duplicates, b.rounds[r].duplicates);
    EXPECT_EQ(a.rounds[r].charged_time, b.rounds[r].charged_time);
  }
}

TEST(CounterRng, RunManyMatchesSequentialAcrossBatchShapes) {
  const auto collection = make_bundle_collection(2, 8, 6);
  const auto config = small_config();
  PaperSchedule schedule(shape_of(collection));
  TrialAndFailure protocol(collection, config, schedule);

  const std::vector<std::uint64_t> seeds{11, 12, 13, 14};
  std::vector<ProtocolResult> sequential;
  sequential.reserve(seeds.size());
  for (const std::uint64_t seed : seeds)
    sequential.push_back(protocol.run(seed));

  // One batch of four, then two batches of two: every shape must equal
  // the one-by-one runs trial-for-trial.
  std::vector<PaperSchedule> scratch(seeds.size(),
                                     PaperSchedule(shape_of(collection)));
  std::vector<DeltaSchedule*> schedules;
  for (auto& s : scratch) schedules.push_back(&s);

  const auto batched = protocol.run_many(seeds, schedules);
  ASSERT_EQ(batched.size(), seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k)
    expect_same_result(sequential[k], batched[k]);

  for (std::size_t half = 0; half < 2; ++half) {
    const std::span<const std::uint64_t> seed_pair{seeds.data() + 2 * half,
                                                   2};
    const std::span<DeltaSchedule* const> sched_pair{
        schedules.data() + 2 * half, 2};
    const auto pair_results = protocol.run_many(seed_pair, sched_pair);
    ASSERT_EQ(pair_results.size(), 2u);
    expect_same_result(sequential[2 * half], pair_results[0]);
    expect_same_result(sequential[2 * half + 1], pair_results[1]);
  }
}

}  // namespace
}  // namespace opto
