// Property sweeps for the multi-hop driver across spacing × rule × B,
// including layout-driven explicit segments.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <tuple>

#include "opto/core/multi_hop.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/lightpath_layout.hpp"
#include "opto/paths/workloads.hpp"

namespace opto {
namespace {

using Params = std::tuple<int /*spacing*/, ContentionRule, int /*B*/>;

class MultiHopProperties : public ::testing::TestWithParam<Params> {
 protected:
  MultiHopConfig config() const {
    MultiHopConfig cfg;
    cfg.hop_spacing = static_cast<std::uint32_t>(std::get<0>(GetParam()));
    cfg.rule = std::get<1>(GetParam());
    cfg.bandwidth = static_cast<std::uint16_t>(std::get<2>(GetParam()));
    cfg.worm_length = 3;
    cfg.max_rounds = 5000;
    return cfg;
  }
};

TEST_P(MultiHopProperties, CompletesAndAccountsSegments) {
  auto topo = std::make_shared<MeshTopology>(make_mesh({16}));
  Rng rng(5);
  const auto collection = mesh_random_function(topo, rng);
  FixedSchedule schedule(12);
  MultiHopTrialAndFailure protocol(collection, config(), schedule);
  const auto result = protocol.run(9);
  ASSERT_TRUE(result.success);

  // Total segment deliveries == Σ per-worm segment counts.
  std::uint64_t expected = 0;
  for (PathId id = 0; id < collection.size(); ++id)
    expected += protocol.segment_count(id);
  std::uint64_t delivered = 0, finished = 0;
  for (const auto& round : result.rounds) {
    delivered += round.segment_deliveries;
    finished += round.worms_finished;
    EXPECT_LE(round.segment_deliveries, round.attempts);
    EXPECT_LE(round.worms_finished, round.segment_deliveries);
  }
  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(finished, collection.size());

  // Segment counts match the spacing split.
  for (PathId id = 0; id < collection.size(); ++id) {
    const std::uint32_t length = collection.path(id).length();
    const std::uint32_t spacing = config().hop_spacing;
    const std::uint32_t expected_segments =
        length == 0 ? 1 : (length + spacing - 1) / spacing;
    EXPECT_EQ(protocol.segment_count(id), expected_segments);
  }

  // A worm needs at least its segment count of rounds.
  for (PathId id = 0; id < collection.size(); ++id)
    EXPECT_GE(result.completion_round[id], protocol.segment_count(id));
}

TEST_P(MultiHopProperties, DeterministicInSeed) {
  auto topo = std::make_shared<MeshTopology>(make_mesh({12}));
  Rng rng(7);
  const auto collection = mesh_random_function(topo, rng);
  FixedSchedule schedule(10);
  MultiHopTrialAndFailure protocol(collection, config(), schedule);
  const auto a = protocol.run(3);
  const auto b = protocol.run(3);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
  EXPECT_EQ(a.completion_round, b.completion_round);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiHopProperties,
    ::testing::Combine(::testing::Values(1, 3, 8, 64),
                       ::testing::Values(ContentionRule::ServeFirst,
                                         ContentionRule::Priority),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<Params>& info) {
      std::string name = "h" + std::to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) == ContentionRule::ServeFirst
                  ? "_sf"
                  : "_prio";
      name += "_B" + std::to_string(std::get<2>(info.param));
      return name;
    });

TEST(MultiHopLayout, LayoutSegmentsRouteEverything) {
  // Explicit segments from a chain layout: every request must land.
  const auto layout = make_chain_layout(40, 3);
  Rng rng(31);
  const auto f = random_function(40, rng);
  std::vector<std::vector<Path>> segments(40);
  for (NodeId i = 0; i < 40; ++i) {
    segments[i] = layout_route(layout, i, f[i]);
    if (segments[i].empty())
      segments[i].push_back(
          Path::from_nodes(*layout.graph, std::vector<NodeId>{i}));
  }
  MultiHopConfig config;
  config.bandwidth = 2;
  config.worm_length = 3;
  config.max_rounds = 5000;
  FixedSchedule schedule(16);
  MultiHopTrialAndFailure protocol(layout.graph, std::move(segments), config,
                                   schedule);
  const auto result = protocol.run(41);
  EXPECT_TRUE(result.success);
}

}  // namespace
}  // namespace opto
