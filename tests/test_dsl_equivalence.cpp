// The DSL's end-to-end proof in tier-1: running each committed example
// scenario through the DSL front-end produces model-result JSON
// byte-identical to the hand-coded C++ builtin that mirrors the bench
// binaries (src/opto/dsl/builtins.cpp). Runs at REPRO_SCALE=0.1 — the
// same operating point as the scenario-smoke CI job.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "opto/dsl/runner.hpp"
#include "opto/dsl/validate.hpp"

namespace opto::dsl {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string run_example(const std::string& stem) {
  const std::string path =
      std::string(OPTO_EXAMPLES_DIR) + "/" + stem + ".opto";
  ScenarioSpec spec;
  DslError parse_error;
  EXPECT_TRUE(load_opto_text(slurp(path), path, spec, parse_error))
      << parse_error.format();
  JsonValue result;
  std::string error;
  EXPECT_TRUE(run_scenario(spec, result, error)) << error;
  return result_text(result);
}

std::string run_native(const std::string& name) {
  JsonValue result;
  std::string error;
  EXPECT_TRUE(run_builtin(name, result, error)) << error;
  return result_text(result);
}

class DslEquivalence : public testing::Test {
 protected:
  void SetUp() override { setenv("REPRO_SCALE", "0.1", /*overwrite=*/1); }
  void TearDown() override { unsetenv("REPRO_SCALE"); }
};

TEST_F(DslEquivalence, E1LeveledUpperMatchesHandCodedPath) {
  const std::string dsl = run_example("e1_leveled_upper");
  EXPECT_EQ(dsl, run_native("e1-leveled-upper"));
  EXPECT_NE(dsl.find("\"label\":\"e1-leveled-upper\""), std::string::npos);
}

TEST_F(DslEquivalence, E15FaultResilienceMatchesHandCodedPath) {
  const std::string dsl = run_example("e15_fault_resilience");
  EXPECT_EQ(dsl, run_native("e15-fault-resilience"));
  // A 40% link-outage plan must actually lose worms to faults, or the
  // byte-compare is vacuously matching two no-fault runs.
  EXPECT_EQ(dsl.find("\"fault_losses\":{\"count\":0}"), std::string::npos);
}

TEST_F(DslEquivalence, E17StreamingEngineMatchesHandCodedPath) {
  const std::string dsl = run_example("e17_streaming_engine");
  EXPECT_EQ(dsl, run_native("e17-streaming-engine"));
  EXPECT_NE(dsl.find("\"mode\":\"engine\""), std::string::npos);
}

TEST_F(DslEquivalence, E19StrategyZooMatchesHandCodedPath) {
  const std::string dsl = run_example("e19_strategy_zoo");
  EXPECT_EQ(dsl, run_native("e19-strategy-zoo"));
  // The strategy block must actually reach the run core: a strategy
  // scenario's result carries the per-strategy schedule metrics.
  EXPECT_NE(dsl.find("\"label\":\"e19-strategy-zoo\""), std::string::npos);
}

TEST_F(DslEquivalence, BuiltinNamesStayWiredToCommittedExamples) {
  const auto names = builtin_names();
  ASSERT_EQ(names.size(), 4u);
  JsonValue result;
  std::string error;
  EXPECT_FALSE(run_builtin("no-such-scenario", result, error));
  EXPECT_NE(error.find("no-such-scenario"), std::string::npos);
}

}  // namespace
}  // namespace opto::dsl
