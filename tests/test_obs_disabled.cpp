// Compiled with OPTO_OBS_ENABLED=0 (see tests/CMakeLists.txt): in this
// translation unit Counter and ScopedTimer must be empty inlines that
// never touch the registry, while library code (compiled with obs on)
// keeps working and simulation outcomes stay identical.
#include <gtest/gtest.h>

#include "opto/core/trial_and_failure.hpp"
#include "opto/benchsupport/experiment.hpp"
#include "opto/obs/obs.hpp"
#include "opto/paths/lowerbound_structures.hpp"

static_assert(OPTO_OBS_ENABLED == 0,
              "this test must be built with -DOPTO_OBS_ENABLED=0");

namespace opto {
namespace {

bool registry_has_counter(const std::string& name) {
  for (const auto& snapshot : obs::counters())
    if (snapshot.name == name) return true;
  return false;
}

bool registry_has_phase(const std::string& name) {
  for (const auto& snapshot : obs::phases())
    if (snapshot.name == name) return true;
  return false;
}

TEST(ObsCompiledOut, CounterNeverRegistersOrRecords) {
  obs::Counter counter("test.compiled_out.counter");
  counter.add(42);
  // The disabled inline never calls into the registry, so the name must
  // not even appear.
  EXPECT_FALSE(registry_has_counter("test.compiled_out.counter"));
}

TEST(ObsCompiledOut, ScopedTimerNeverRegisters) {
  { const obs::ScopedTimer timer("test.compiled_out.phase"); }
  EXPECT_FALSE(registry_has_phase("test.compiled_out.phase"));
}

TEST(ObsCompiledOut, LibraryCodeStillObserves) {
  // The sim/core libraries are compiled with obs enabled; running a
  // protocol from this TU still feeds their counters.
  obs::set_enabled(true);
  obs::reset();
  const auto collection = make_bundle_collection(1, 4, 6);
  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 3;
  config.max_rounds = 50;
  const auto schedule = paper_schedule_factory(3, 2)(collection);
  TrialAndFailure protocol(collection, config, *schedule);
  const ProtocolResult result = protocol.run(7);
  EXPECT_TRUE(result.success);

  bool found = false;
  for (const auto& snapshot : obs::counters())
    if (snapshot.name == "protocol.runs" && snapshot.value == 1) found = true;
  EXPECT_TRUE(found);
  obs::reset();
}

TEST(ObsCompiledOut, OutcomesMatchObservedBuild) {
  // Differential against the obs-on libraries: toggling the runtime flag
  // from an obs-off TU must still leave outcomes untouched.
  const auto run_once = [] {
    const auto collection = make_bundle_collection(1, 8, 10);
    ProtocolConfig config;
    config.bandwidth = 2;
    config.worm_length = 4;
    config.max_rounds = 100;
    const auto schedule = paper_schedule_factory(4, 2)(collection);
    TrialAndFailure protocol(collection, config, *schedule);
    return protocol.run(12345);
  };
  obs::set_enabled(true);
  const ProtocolResult on = run_once();
  obs::set_enabled(false);
  const ProtocolResult off = run_once();
  obs::set_enabled(true);
  EXPECT_EQ(on.success, off.success);
  EXPECT_EQ(on.rounds_used, off.rounds_used);
  EXPECT_EQ(on.total_charged_time, off.total_charged_time);
  EXPECT_EQ(on.total_actual_time, off.total_actual_time);
  obs::reset();
}

}  // namespace
}  // namespace opto
