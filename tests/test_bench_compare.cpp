// obs/compare: metric directions, noise floor, regression/blowup
// thresholds, warn-only semantics, and the determinism normalization —
// the exact logic the CI perf gate trusts.
#include <gtest/gtest.h>

#include <sstream>

#include "opto/obs/bench_record.hpp"
#include "opto/obs/compare.hpp"

namespace opto::obs {
namespace {

/// Builds a minimal single BenchRecord document. `wall_ns` doubles as the
/// noise-floor datum (metrics.measured_wall_ns).
JsonValue record(double steps_per_s, double wall_ns,
                 double allocs_per_pass = 10.0) {
  JsonValue metrics = JsonValue::make_object();
  metrics.add_member("worm_steps_per_s", JsonValue::of(steps_per_s));
  metrics.add_member("measured_wall_ns", JsonValue::of(wall_ns));
  metrics.add_member("allocs_per_pass", JsonValue::of(allocs_per_pass));
  metrics.add_member("registry_hit_rate", JsonValue::of(0.5));

  JsonValue doc = JsonValue::make_object();
  doc.add_member("schema", JsonValue::of(kBenchRecordSchema));
  doc.add_member("schema_version",
                 JsonValue::of(double{kBenchRecordSchemaVersion}));
  doc.add_member("label", JsonValue::of("unit"));
  doc.add_member("metrics", std::move(metrics));
  return doc;
}

const MetricDelta* find_delta(const CompareReport& report,
                              const std::string& metric) {
  for (const auto& delta : report.deltas)
    if (delta.metric == metric) return &delta;
  return nullptr;
}

// Above the default 5e7 ns floor so timing metrics are not skipped.
constexpr double kLongRun = 1e8;

TEST(MetricDirection, ByName) {
  EXPECT_EQ(metric_direction("worm_steps_per_s"), Direction::HigherBetter);
  EXPECT_EQ(metric_direction("wall_s"), Direction::LowerBetter);
  EXPECT_EQ(metric_direction("measured_wall_ns"), Direction::LowerBetter);
  EXPECT_EQ(metric_direction("allocs_per_pass"), Direction::LowerBetter);
  EXPECT_EQ(metric_direction("registry_hit_rate"), Direction::Neutral);
}

TEST(BenchCompare, ImprovementPasses) {
  const auto report = compare_records(record(1e6, kLongRun),
                                      record(2e6, kLongRun * 0.5), {});
  EXPECT_FALSE(report.fail);
  const auto* delta = find_delta(report, "worm_steps_per_s");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->status, MetricStatus::Improved);
  EXPECT_DOUBLE_EQ(delta->ratio, 2.0);
  // Lower-better metric: the oriented ratio is still > 1 on improvement.
  const auto* wall = find_delta(report, "measured_wall_ns");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->status, MetricStatus::Improved);
  EXPECT_DOUBLE_EQ(wall->ratio, 2.0);
}

TEST(BenchCompare, WithinNoisePasses) {
  // 5% off with a 10% threshold: unchanged.
  const auto report =
      compare_records(record(1e6, kLongRun), record(0.95e6, kLongRun), {});
  EXPECT_FALSE(report.fail);
  EXPECT_EQ(find_delta(report, "worm_steps_per_s")->status,
            MetricStatus::Unchanged);
}

TEST(BenchCompare, RegressionFails) {
  const auto report =
      compare_records(record(1e6, kLongRun), record(0.7e6, kLongRun), {});
  EXPECT_TRUE(report.fail);
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_EQ(find_delta(report, "worm_steps_per_s")->status,
            MetricStatus::Regressed);
}

TEST(BenchCompare, ThresholdIsConfigurable) {
  CompareOptions loose;
  loose.threshold = 0.5;
  EXPECT_FALSE(
      compare_records(record(1e6, kLongRun), record(0.7e6, kLongRun), loose)
          .fail);
}

TEST(BenchCompare, BelowNoiseFloorSkipsTimingMetrics) {
  // 4x slower — but the runs are far below the floor, so timing metrics
  // are skipped and nothing gates. Count metrics still compare.
  const auto report =
      compare_records(record(1e6, 1e5, 10.0), record(0.25e6, 4e5, 10.0), {});
  EXPECT_FALSE(report.fail);
  EXPECT_EQ(find_delta(report, "worm_steps_per_s")->status,
            MetricStatus::SkippedNoise);
  EXPECT_EQ(find_delta(report, "measured_wall_ns")->status,
            MetricStatus::SkippedNoise);
  EXPECT_EQ(find_delta(report, "allocs_per_pass")->status,
            MetricStatus::Unchanged);
}

TEST(BenchCompare, AllocRegressionGatesEvenUnderNoiseFloor) {
  // allocs_per_pass is count-based: it gates regardless of run length.
  const auto report =
      compare_records(record(1e6, 1e5, 10.0), record(1e6, 1e5, 20.0), {});
  EXPECT_TRUE(report.fail);
  EXPECT_EQ(find_delta(report, "allocs_per_pass")->status,
            MetricStatus::Regressed);
}

TEST(BenchCompare, NeutralMetricsNeverGate) {
  auto base = record(1e6, kLongRun);
  auto cur = record(1e6, kLongRun);
  // registry_hit_rate halves — informational only.
  for (auto& [key, value] : cur.members)
    if (key == "metrics")
      for (auto& [name, metric] : value.members)
        if (name == "registry_hit_rate") metric.number = 0.25;
  const auto report = compare_records(base, cur, {});
  EXPECT_FALSE(report.fail);
  EXPECT_EQ(find_delta(report, "registry_hit_rate")->status,
            MetricStatus::Neutral);
}

TEST(BenchCompare, MissingMetricFailsStrictPassesWarnOnly) {
  auto base = record(1e6, kLongRun);
  auto cur = record(1e6, kLongRun);
  // Drop worm_steps_per_s from the current record.
  for (auto& [key, value] : cur.members)
    if (key == "metrics")
      std::erase_if(value.members,
                    [](const auto& member) {
                      return member.first == "worm_steps_per_s";
                    });
  EXPECT_TRUE(compare_records(base, cur, {}).fail);
  const auto* delta = find_delta(compare_records(base, cur, {}),
                                 "worm_steps_per_s");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->status, MetricStatus::MissingCurrent);

  CompareOptions warn;
  warn.warn_only = true;
  EXPECT_FALSE(compare_records(base, cur, warn).fail);
}

TEST(BenchCompare, NewMetricIsInformational) {
  auto base = record(1e6, kLongRun);
  auto cur = record(1e6, kLongRun);
  for (auto& [key, value] : cur.members)
    if (key == "metrics")
      value.add_member("brand_new_per_s", JsonValue::of(5.0));
  const auto report = compare_records(base, cur, {});
  EXPECT_FALSE(report.fail);
  EXPECT_EQ(find_delta(report, "brand_new_per_s")->status,
            MetricStatus::MissingBaseline);
}

TEST(BenchCompare, BlowupFailsEvenWarnOnly) {
  CompareOptions warn;
  warn.warn_only = true;
  // 4x regression > default 3x blowup factor.
  const auto report =
      compare_records(record(4e6, kLongRun), record(1e6, kLongRun), warn);
  EXPECT_TRUE(report.fail);
  EXPECT_EQ(report.blowups, 1u);
  EXPECT_EQ(find_delta(report, "worm_steps_per_s")->status,
            MetricStatus::Blowup);
}

TEST(BenchCompare, SuiteMatchesRecordsByLabel) {
  auto a0 = record(1e6, kLongRun);
  auto b0 = record(1e6, kLongRun);
  auto a1 = record(1e6, kLongRun);
  auto dropped = record(1e6, kLongRun);
  for (auto& [key, value] : a0.members)
    if (key == "label") value.text = "bench-a";
  for (auto& [key, value] : a1.members)
    if (key == "label") value.text = "bench-a";
  for (auto& [key, value] : b0.members)
    if (key == "label") value.text = "bench-b";
  for (auto& [key, value] : dropped.members)
    if (key == "label") value.text = "bench-gone";

  std::vector<JsonValue> base_records;
  base_records.push_back(a0);
  base_records.push_back(b0);
  base_records.push_back(dropped);
  std::vector<JsonValue> cur_records;
  cur_records.push_back(a1);
  cur_records.push_back(b0);
  const auto baseline = make_suite("s", 1.0, std::move(base_records));
  const auto current = make_suite("s", 1.0, std::move(cur_records));
  EXPECT_EQ(baseline.string_at("schema"), kBenchSuiteSchema);

  const auto report = compare_records(baseline, current, {});
  // bench-gone vanished: that is a hard finding even though every present
  // metric matched.
  ASSERT_EQ(report.missing_records.size(), 1u);
  EXPECT_EQ(report.missing_records[0], "bench-gone");
  EXPECT_TRUE(report.fail);
}

TEST(BenchCompare, PrintReportSummarizes) {
  const auto report =
      compare_records(record(1e6, kLongRun), record(0.7e6, kLongRun), {});
  std::ostringstream out;
  print_report(out, report, {});
  EXPECT_NE(out.str().find("RESULT: FAIL"), std::string::npos);
  EXPECT_NE(out.str().find("worm_steps_per_s"), std::string::npos);
}

TEST(Normalize, StripsTimingsAndSortsKeys) {
  const auto a = record(1e6, kLongRun);
  const auto b = record(9e6, kLongRun * 7);  // wildly different timings
  const std::string na = normalize_for_determinism(a);
  EXPECT_EQ(na, normalize_for_determinism(b));
  EXPECT_EQ(na.find("wall"), std::string::npos);
  EXPECT_EQ(na.find("per_s"), std::string::npos);
  EXPECT_NE(na.find("\"label\":\"unit\""), std::string::npos);
}

}  // namespace
}  // namespace opto::obs
