// ProtocolResult JSON serialization: structurally valid and faithful.
#include <gtest/gtest.h>

#include <sstream>

#include "opto/core/result_json.hpp"
#include "opto/paths/lowerbound_structures.hpp"

namespace opto {
namespace {

TEST(ResultJson, SerializesARealRun) {
  const auto collection = make_bundle_collection(1, 6, 8);
  ProtocolConfig config;
  config.worm_length = 4;
  config.max_rounds = 100;
  FixedSchedule schedule(16);
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(3);
  ASSERT_TRUE(result.success);

  std::ostringstream os;
  write_result_json(os, result);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"success\":true"), std::string::npos);
  EXPECT_NE(json.find("\"rounds_used\":" +
                      std::to_string(result.rounds_used)),
            std::string::npos);
  EXPECT_NE(json.find("\"completion_round\":["), std::string::npos);
  EXPECT_NE(json.find("\"delta\":16"), std::string::npos);
  EXPECT_NE(json.find("\"worm_steps\":"), std::string::npos);

  // Balanced braces/brackets (the writer asserts this too, but check the
  // emitted text end-to-end).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  // One entry per round, one completion entry per worm.
  std::size_t round_entries = 0, pos = 0;
  while ((pos = json.find("\"round\":", pos)) != std::string::npos) {
    ++round_entries;
    ++pos;
  }
  EXPECT_EQ(round_entries, result.rounds.size());
}

TEST(ResultJson, FailedRunSerializesFalse) {
  const auto collection = make_triangle_collection(1, 8, 4);
  ProtocolConfig config;
  config.worm_length = 4;
  config.max_rounds = 5;
  NoDelaySchedule schedule;  // deterministic livelock
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(1);
  ASSERT_FALSE(result.success);
  std::ostringstream os;
  write_result_json(os, result);
  EXPECT_NE(os.str().find("\"success\":false"), std::string::npos);
  // Unfinished worms report completion round 0.
  EXPECT_NE(os.str().find("[0,0,0]"), std::string::npos);
}

}  // namespace
}  // namespace opto
