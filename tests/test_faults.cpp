// Deterministic fault injection (sim/faults.hpp): replay determinism,
// stuck-wavelength occupancy semantics, outage/corruption/ack-drop
// mechanics, RetryPolicy backoff bounds, and the differential guarantee
// that a zero-fault FaultPlan is bit-identical to no plan at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "opto/core/result_json.hpp"
#include "opto/core/trial_and_failure.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/sim/faults.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {
namespace {

std::shared_ptr<Graph> make_chain(NodeId nodes) {
  auto graph = std::make_shared<Graph>(nodes, "chain");
  for (NodeId u = 0; u + 1 < nodes; ++u) graph->add_edge(u, u + 1);
  return graph;
}

PathCollection chain_bundle(std::shared_ptr<const Graph> graph, NodeId from,
                            NodeId to, std::uint32_t copies) {
  PathCollection collection(graph);
  std::vector<NodeId> nodes;
  for (NodeId u = from; u <= to; ++u) nodes.push_back(u);
  for (std::uint32_t c = 0; c < copies; ++c)
    collection.add(Path::from_nodes(*graph, nodes));
  return collection;
}

LaunchSpec spec(PathId path, SimTime start, Wavelength wl, std::uint32_t len,
                std::uint32_t priority = 0) {
  LaunchSpec s;
  s.path = path;
  s.start_time = start;
  s.wavelength = wl;
  s.length = len;
  s.priority = priority;
  return s;
}

void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const TraceEvent& ea = a.events()[i];
    const TraceEvent& eb = b.events()[i];
    EXPECT_EQ(ea.time, eb.time) << "event " << i;
    EXPECT_EQ(ea.kind, eb.kind) << "event " << i;
    EXPECT_EQ(ea.worm, eb.worm) << "event " << i;
    EXPECT_EQ(ea.link, eb.link) << "event " << i;
    EXPECT_EQ(ea.wavelength, eb.wavelength) << "event " << i;
    EXPECT_EQ(ea.other, eb.other) << "event " << i;
  }
}

void expect_results_equal(const PassResult& a, const PassResult& b) {
  ASSERT_EQ(a.worms.size(), b.worms.size());
  for (std::size_t i = 0; i < a.worms.size(); ++i) {
    EXPECT_EQ(a.worms[i].status, b.worms[i].status) << "worm " << i;
    EXPECT_EQ(a.worms[i].truncated, b.worms[i].truncated) << "worm " << i;
    EXPECT_EQ(a.worms[i].corrupted, b.worms[i].corrupted) << "worm " << i;
    EXPECT_EQ(a.worms[i].fault_loss, b.worms[i].fault_loss) << "worm " << i;
    EXPECT_EQ(a.worms[i].finish_time, b.worms[i].finish_time) << "worm " << i;
    EXPECT_EQ(a.worms[i].blocked_at_link, b.worms[i].blocked_at_link);
    EXPECT_EQ(a.worms[i].blocked_by, b.worms[i].blocked_by);
  }
  EXPECT_EQ(a.metrics.launched, b.metrics.launched);
  EXPECT_EQ(a.metrics.delivered, b.metrics.delivered);
  EXPECT_EQ(a.metrics.killed, b.metrics.killed);
  EXPECT_EQ(a.metrics.fault_kills, b.metrics.fault_kills);
  EXPECT_EQ(a.metrics.truncated, b.metrics.truncated);
  EXPECT_EQ(a.metrics.truncated_arrivals, b.metrics.truncated_arrivals);
  EXPECT_EQ(a.metrics.corrupted, b.metrics.corrupted);
  EXPECT_EQ(a.metrics.corrupted_arrivals, b.metrics.corrupted_arrivals);
  EXPECT_EQ(a.metrics.contentions, b.metrics.contentions);
  EXPECT_EQ(a.metrics.retunes, b.metrics.retunes);
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.worm_steps, b.metrics.worm_steps);
  EXPECT_EQ(a.metrics.link_busy_steps, b.metrics.link_busy_steps);
  EXPECT_EQ(a.metrics.steps, b.metrics.steps);
  expect_traces_equal(a.trace, b.trace);
}

// -------------------------------------------------------------- FaultPlan

TEST(FaultPlan, QueriesAreDeterministicAcrossInstances) {
  FaultConfig config;
  config.link_outage_rate = 0.5;
  config.coupler_outage_rate = 0.3;
  config.stuck_wavelength_rate = 0.4;
  config.corruption_rate = 0.2;
  config.ack_drop_rate = 0.3;
  FaultPlan a(config, 42);
  FaultPlan b(config, 42);
  a.set_epoch(7);
  b.set_epoch(7);
  for (EdgeId link = 0; link < 64; ++link) {
    for (SimTime t = 0; t < 8; ++t) {
      EXPECT_EQ(a.link_down(link, t), b.link_down(link, t));
      EXPECT_EQ(a.coupler_down(link, t), b.coupler_down(link, t));
    }
    EXPECT_EQ(a.wavelength_stuck(link, 0), b.wavelength_stuck(link, 0));
    EXPECT_EQ(a.corrupts_flit(link, link), b.corrupts_flit(link, link));
    EXPECT_EQ(a.drops_ack(link), b.drops_ack(link));
  }
}

TEST(FaultPlan, EpochResamplesTheFaultPattern) {
  FaultConfig config;
  config.stuck_wavelength_rate = 0.5;
  FaultPlan plan(config, 9);
  plan.set_epoch(1);
  std::vector<bool> epoch1;
  for (EdgeId link = 0; link < 256; ++link)
    epoch1.push_back(plan.wavelength_stuck(link, 0));
  plan.set_epoch(2);
  bool any_difference = false;
  for (EdgeId link = 0; link < 256; ++link)
    any_difference |= epoch1[link] != plan.wavelength_stuck(link, 0);
  EXPECT_TRUE(any_difference);
  // And the rate is roughly respected (256 coin flips at p = 0.5).
  const auto stuck_count = static_cast<std::size_t>(
      std::count(epoch1.begin(), epoch1.end(), true));
  EXPECT_GT(stuck_count, 64u);
  EXPECT_LT(stuck_count, 192u);
}

TEST(FaultPlan, OutageRespectsDutyCycle) {
  FaultConfig config;
  config.link_outage_rate = 1.0;
  config.outage_period = 8;
  config.outage_duration = 3;
  FaultPlan plan(config, 5);
  for (EdgeId link = 0; link < 16; ++link) {
    int down = 0;
    for (SimTime t = 0; t < 8; ++t) down += plan.link_down(link, t) ? 1 : 0;
    EXPECT_EQ(down, 3) << "link " << link;
    // Periodic: the window repeats every period.
    for (SimTime t = 0; t < 8; ++t)
      EXPECT_EQ(plan.link_down(link, t), plan.link_down(link, t + 8));
  }
}

TEST(FaultPlan, ZeroRatesNeverFire) {
  FaultPlan plan(FaultConfig{}, 123);
  EXPECT_FALSE(plan.enabled());
  for (EdgeId link = 0; link < 32; ++link) {
    EXPECT_FALSE(plan.link_down(link, 0));
    EXPECT_FALSE(plan.coupler_down(link, 0));
    EXPECT_FALSE(plan.wavelength_stuck(link, 0));
    EXPECT_FALSE(plan.corrupts_flit(link, link));
    EXPECT_FALSE(plan.drops_ack(link));
  }
}

// ------------------------------------------------------ simulator faults

TEST(SimulatorFaults, ZeroFaultPlanIsBitIdenticalToNoPlan) {
  const auto graph = make_chain(8);
  const auto collection = chain_bundle(graph, 0, 7, 6);
  std::vector<LaunchSpec> specs;
  for (PathId p = 0; p < 6; ++p)
    specs.push_back(spec(p, p % 3, static_cast<Wavelength>(p % 2), 3));

  SimConfig config;
  config.bandwidth = 2;
  config.record_trace = true;
  Simulator plain(collection, config);
  const auto baseline = plain.run(specs);

  const FaultPlan zero_plan(FaultConfig{}, 77);
  SimConfig faulted_config = config;
  faulted_config.faults = &zero_plan;
  Simulator with_plan(collection, faulted_config);
  const auto with_zero_plan = with_plan.run(specs);

  expect_results_equal(baseline, with_zero_plan);
  EXPECT_EQ(with_zero_plan.metrics.fault_kills, 0u);
  EXPECT_EQ(with_zero_plan.metrics.corrupted, 0u);
}

TEST(SimulatorFaults, SameSeedReplaysIdenticalEventTrace) {
  const auto graph = make_chain(10);
  const auto collection = chain_bundle(graph, 0, 9, 8);
  std::vector<LaunchSpec> specs;
  for (PathId p = 0; p < 8; ++p)
    specs.push_back(spec(p, p % 4, static_cast<Wavelength>(p % 2), 2));

  FaultConfig fault_config;
  fault_config.link_outage_rate = 0.3;
  fault_config.outage_period = 8;
  fault_config.outage_duration = 4;
  fault_config.stuck_wavelength_rate = 0.2;
  fault_config.corruption_rate = 0.2;

  FaultPlan plan(fault_config, 2024);
  plan.set_epoch(3);
  SimConfig config;
  config.bandwidth = 2;
  config.record_trace = true;
  config.faults = &plan;
  Simulator sim(collection, config);
  const auto first = sim.run(specs);
  const auto second = sim.run(specs);
  expect_results_equal(first, second);

  // A fresh plan instance keyed identically replays the same events.
  FaultPlan replay(fault_config, 2024);
  replay.set_epoch(3);
  SimConfig replay_config = config;
  replay_config.faults = &replay;
  Simulator replay_sim(collection, replay_config);
  expect_results_equal(first, replay_sim.run(specs));

  // The plan actually fired (otherwise this test is vacuous).
  EXPECT_GT(first.metrics.fault_kills + first.metrics.corrupted, 0u);
}

TEST(SimulatorFaults, StuckWavelengthEliminatesFixedEntrant) {
  const auto graph = make_chain(2);  // single link 0->1, id 0
  const auto collection = chain_bundle(graph, 0, 1, 1);

  // Find a keying where wavelength 0 is stuck on link 0 but wavelength 1
  // is free — the stuck set is pseudorandom, so scan base seeds.
  FaultConfig fault_config;
  fault_config.stuck_wavelength_rate = 0.5;
  std::uint64_t seed = 0;
  bool found = false;
  for (; seed < 256 && !found; ++seed) {
    const FaultPlan probe(fault_config, seed);
    found = probe.wavelength_stuck(0, 0) && !probe.wavelength_stuck(0, 1);
  }
  ASSERT_TRUE(found);
  const FaultPlan plan(fault_config, seed - 1);

  SimConfig config;
  config.bandwidth = 2;
  config.faults = &plan;
  Simulator sim(collection, config);
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 2), spec(0, 1, 1, 2)});

  // Wavelength 0 is permanently held: its entrant dies at the link with
  // no witness worm; wavelength 1 sails through.
  EXPECT_EQ(result.worms[0].status, WormStatus::Killed);
  EXPECT_TRUE(result.worms[0].fault_loss);
  EXPECT_EQ(result.worms[0].blocked_by, kInvalidWorm);
  EXPECT_EQ(result.worms[0].finish_time, 0);
  EXPECT_TRUE(result.worms[1].delivered_intact());
  EXPECT_EQ(result.metrics.fault_kills, 1u);
  EXPECT_EQ(result.metrics.killed, 0u);
  EXPECT_EQ(result.metrics.contentions, 0u);
}

TEST(SimulatorFaults, StuckWavelengthIsHeldForTheWholePass) {
  const auto graph = make_chain(2);
  const auto collection = chain_bundle(graph, 0, 1, 1);
  FaultConfig fault_config;
  fault_config.stuck_wavelength_rate = 1.0;  // every (link, wl) stuck
  const FaultPlan plan(fault_config, 1);
  SimConfig config;
  config.faults = &plan;
  Simulator sim(collection, config);
  // Entrants spread across time: a stuck wavelength never frees up, unlike
  // a worm-held claim that releases after its flits drain.
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 1), spec(0, 10, 0, 1), spec(0, 100, 0, 1)});
  EXPECT_EQ(result.metrics.fault_kills, 3u);
  EXPECT_EQ(result.metrics.delivered, 0u);
  for (const auto& worm : result.worms)
    EXPECT_EQ(worm.status, WormStatus::Killed);
}

TEST(SimulatorFaults, StuckWavelengthRetunedAroundByConvertingRouter) {
  const auto graph = make_chain(2);
  const auto collection = chain_bundle(graph, 0, 1, 1);
  FaultConfig fault_config;
  fault_config.stuck_wavelength_rate = 0.5;
  std::uint64_t seed = 0;
  bool found = false;
  for (; seed < 256 && !found; ++seed) {
    const FaultPlan probe(fault_config, seed);
    found = probe.wavelength_stuck(0, 0) && !probe.wavelength_stuck(0, 1);
  }
  ASSERT_TRUE(found);
  const FaultPlan plan(fault_config, seed - 1);

  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Full;
  config.faults = &plan;
  Simulator sim(collection, config);
  const auto result = sim.run(std::vector<LaunchSpec>{spec(0, 0, 0, 2)});
  // The converting coupler sees wavelength 0 permanently held and retunes
  // the worm onto the free wavelength 1 instead of killing it.
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_EQ(result.metrics.retunes, 1u);
  EXPECT_EQ(result.metrics.fault_kills, 0u);
}

TEST(SimulatorFaults, DarkLinkEliminatesLikeServeFirstLoss) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 2);
  FaultConfig fault_config;
  fault_config.link_outage_rate = 1.0;
  fault_config.outage_period = 4;
  fault_config.outage_duration = 4;  // permanently dark
  const FaultPlan plan(fault_config, 3);
  SimConfig config;
  config.faults = &plan;
  Simulator sim(collection, config);
  const auto result =
      sim.run(std::vector<LaunchSpec>{spec(0, 0, 0, 2), spec(1, 5, 0, 2)});
  EXPECT_EQ(result.metrics.fault_kills, 2u);
  EXPECT_EQ(result.metrics.killed, 0u);
  EXPECT_EQ(result.metrics.delivered, 0u);
  // Killed at the first link, at the injection step, with no witness.
  EXPECT_EQ(result.worms[0].blocked_at_link, 0u);
  EXPECT_EQ(result.worms[0].finish_time, 0);
  EXPECT_EQ(result.worms[1].finish_time, 5);
  EXPECT_EQ(result.worms[0].blocked_by, kInvalidWorm);
  EXPECT_TRUE(result.worms[0].fault_loss);
}

TEST(SimulatorFaults, LinkOutageOnlyKillsDuringDownWindow) {
  const auto graph = make_chain(2);
  const auto collection = chain_bundle(graph, 0, 1, 1);
  FaultConfig fault_config;
  fault_config.link_outage_rate = 1.0;
  fault_config.outage_period = 16;
  fault_config.outage_duration = 4;
  const FaultPlan plan(fault_config, 11);
  // Pick one step inside and one outside the down window via the plan's
  // own query (the phase is pseudorandom).
  SimTime down_at = -1, up_at = -1;
  for (SimTime t = 0; t < 16; ++t) {
    if (plan.link_down(0, t) && down_at < 0) down_at = t;
    if (!plan.link_down(0, t) && up_at < 0) up_at = t;
  }
  ASSERT_GE(down_at, 0);
  ASSERT_GE(up_at, 0);

  SimConfig config;
  config.faults = &plan;
  Simulator sim(collection, config);
  const auto killed = sim.run(std::vector<LaunchSpec>{spec(0, down_at, 0, 1)});
  EXPECT_EQ(killed.metrics.fault_kills, 1u);
  const auto delivered = sim.run(std::vector<LaunchSpec>{spec(0, up_at, 0, 1)});
  EXPECT_TRUE(delivered.worms[0].delivered_intact());
}

TEST(SimulatorFaults, FailedCouplerEliminatesEntrants) {
  const auto graph = make_chain(4);
  const auto collection = chain_bundle(graph, 0, 3, 1);
  FaultConfig fault_config;
  fault_config.coupler_outage_rate = 1.0;
  fault_config.outage_period = 2;
  fault_config.outage_duration = 2;  // every coupler permanently down
  const FaultPlan plan(fault_config, 8);
  SimConfig config;
  config.faults = &plan;
  Simulator sim(collection, config);
  const auto result = sim.run(std::vector<LaunchSpec>{spec(0, 2, 0, 3)});
  EXPECT_EQ(result.metrics.fault_kills, 1u);
  EXPECT_EQ(result.worms[0].blocked_at_link, 0u);
  EXPECT_TRUE(result.worms[0].fault_loss);
}

TEST(SimulatorFaults, CorruptionVoidsDeliveryButKeepsOccupancy) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 1);
  FaultConfig fault_config;
  fault_config.corruption_rate = 1.0;
  const FaultPlan plan(fault_config, 21);
  const std::vector<LaunchSpec> specs{spec(0, 0, 0, 3)};

  SimConfig clean_config;
  Simulator clean_sim(collection, clean_config);
  const auto baseline = clean_sim.run(specs);
  ASSERT_TRUE(baseline.worms[0].delivered_intact());

  SimConfig config;
  config.faults = &plan;
  Simulator sim(collection, config);
  const auto result = sim.run(specs);
  // The worm still traverses the full path on the fault-free timetable —
  // corruption voids the payload, it does not stop the flits.
  EXPECT_EQ(result.worms[0].status, WormStatus::Delivered);
  EXPECT_EQ(result.worms[0].finish_time, baseline.worms[0].finish_time);
  EXPECT_EQ(result.metrics.link_busy_steps, baseline.metrics.link_busy_steps);
  EXPECT_FALSE(result.worms[0].delivered_intact());
  EXPECT_TRUE(result.worms[0].corrupted);
  EXPECT_TRUE(result.worms[0].fault_loss);
  EXPECT_EQ(result.metrics.delivered, 0u);
  EXPECT_EQ(result.metrics.corrupted_arrivals, 1u);
  // One corruption event, at the first link entered (rate 1 fires
  // immediately and the flag is sticky).
  EXPECT_EQ(result.metrics.corrupted, 1u);
}

// ------------------------------------------------------- protocol faults

ProtocolResult run_protocol(const PathCollection& collection,
                            const ProtocolConfig& config, SimTime delta,
                            std::uint64_t seed) {
  FixedSchedule schedule(delta);
  TrialAndFailure protocol(collection, config, schedule);
  return protocol.run(seed);
}

TEST(ProtocolFaults, ZeroFaultConfigMatchesDefaultRunExactly) {
  const auto graph = make_chain(6);
  const auto collection = chain_bundle(graph, 0, 5, 5);
  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 3;
  config.max_rounds = 64;
  const auto baseline = run_protocol(collection, config, 8, 99);

  ProtocolConfig tweaked = config;
  tweaked.faults = FaultConfig{};  // explicit zero-fault plan
  tweaked.retry.growth = 8.0;      // inert without fault losses
  tweaked.retry.max_backoff = 64.0;
  const auto with_plan = run_protocol(collection, tweaked, 8, 99);

  std::ostringstream a, b;
  write_result_json(a, baseline);
  write_result_json(b, with_plan);
  EXPECT_EQ(a.str(), b.str());
  for (const RoundReport& round : with_plan.rounds) {
    EXPECT_DOUBLE_EQ(round.backoff, 1.0);
    EXPECT_EQ(round.fault_losses, 0u);
    EXPECT_EQ(round.ack_drops, 0u);
  }
}

TEST(ProtocolFaults, RunsReplayBitIdenticallyUnderFaults) {
  const auto graph = make_chain(6);
  const auto collection = chain_bundle(graph, 0, 5, 5);
  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 3;
  config.max_rounds = 32;
  config.faults.link_outage_rate = 0.4;
  config.faults.outage_period = 8;
  config.faults.outage_duration = 4;
  config.faults.corruption_rate = 0.1;
  config.faults.ack_drop_rate = 0.2;
  const auto first = run_protocol(collection, config, 8, 7);
  const auto second = run_protocol(collection, config, 8, 7);
  std::ostringstream a, b;
  write_result_json(a, first);
  write_result_json(b, second);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ProtocolFaults, BackoffGrowsBoundedAndResetsDelta) {
  const auto graph = make_chain(4);
  const auto collection = chain_bundle(graph, 0, 3, 2);
  ProtocolConfig config;
  config.max_rounds = 6;
  config.faults.link_outage_rate = 1.0;
  config.faults.outage_period = 4;
  config.faults.outage_duration = 4;  // nothing ever delivers
  config.retry.growth = 2.0;
  config.retry.max_backoff = 4.0;
  const auto result = run_protocol(collection, config, 8, 13);
  ASSERT_FALSE(result.success);
  ASSERT_EQ(result.rounds.size(), 6u);
  // Every loss is fault-caused, so the multiplier doubles per round until
  // the cap: 1, 2, 4, 4, ... and Δ_t widens in lockstep over the
  // schedule's fixed Δ = 8.
  const double expected_backoff[] = {1.0, 2.0, 4.0, 4.0, 4.0, 4.0};
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const RoundReport& round = result.rounds[i];
    EXPECT_DOUBLE_EQ(round.backoff, expected_backoff[i]) << "round " << i;
    EXPECT_EQ(round.delta,
              static_cast<SimTime>(8 * expected_backoff[i]))
        << "round " << i;
    EXPECT_LE(round.backoff, config.retry.max_backoff);
    EXPECT_EQ(round.fault_losses, round.active_before);
    EXPECT_EQ(round.contention_losses, 0u);
  }
}

TEST(ProtocolFaults, BackoffRelaxesAfterCleanRounds) {
  // Outages fault only the chain's first link, with a 50% duty cycle:
  // rounds alternate between faulty and clean as delays shift the worm
  // across the window, so both branches of the policy are exercised.
  const auto graph = make_chain(3);
  const auto collection = chain_bundle(graph, 0, 2, 3);
  ProtocolConfig config;
  config.max_rounds = 64;
  config.faults.link_outage_rate = 0.5;
  config.faults.outage_period = 8;
  config.faults.outage_duration = 4;
  config.retry.growth = 2.0;
  config.retry.decay = 0.5;
  config.retry.max_backoff = 8.0;
  // The fault pattern re-keys per round (epoch), so whether a given run
  // interleaves faulty and clean rounds depends on the seed — scan for one
  // that exercises both branches of the policy.
  bool saw_growth = false, saw_decay = false;
  for (std::uint64_t seed = 0; seed < 64 && !(saw_growth && saw_decay);
       ++seed) {
    saw_growth = saw_decay = false;
    const auto result = run_protocol(collection, config, 4, seed);
    for (std::size_t i = 1; i < result.rounds.size(); ++i) {
      const double prev = result.rounds[i - 1].backoff;
      const double curr = result.rounds[i].backoff;
      EXPECT_GE(curr, 1.0);
      EXPECT_LE(curr, config.retry.max_backoff);
      saw_growth |= curr > prev;
      saw_decay |= curr < prev;
    }
  }
  EXPECT_TRUE(saw_growth);
  EXPECT_TRUE(saw_decay);
}

TEST(ProtocolFaults, DroppedAcksForceDuplicateDeliveries) {
  const auto graph = make_chain(4);
  const auto collection = chain_bundle(graph, 0, 3, 1);
  ProtocolConfig config;
  config.max_rounds = 5;
  config.faults.ack_drop_rate = 1.0;
  const auto result = run_protocol(collection, config, 4, 23);
  // The worm delivers every round but its ack never returns.
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.rounds_used, 5u);
  EXPECT_GE(result.duplicate_deliveries, 4u);
  for (const RoundReport& round : result.rounds) {
    EXPECT_EQ(round.acknowledged, 0u);
    EXPECT_EQ(round.ack_drops, round.delivered);
  }
}

TEST(ProtocolFaults, SimulatedAcksAlsoTraverseTheFaultedNetwork) {
  const auto graph = make_chain(4);
  const auto collection = chain_bundle(graph, 0, 3, 1);
  ProtocolConfig config;
  config.max_rounds = 4;
  config.ack_mode = AckMode::Simulated;
  config.faults.link_outage_rate = 1.0;
  config.faults.outage_period = 2;
  config.faults.outage_duration = 2;  // network fully dark both ways
  const auto result = run_protocol(collection, config, 4, 29);
  EXPECT_FALSE(result.success);
  for (const RoundReport& round : result.rounds) {
    EXPECT_EQ(round.delivered, 0u);
    EXPECT_EQ(round.fault_losses, 1u);
  }
}

TEST(ProtocolFaults, FaultAndContentionLossesAreAccountedSeparately) {
  // Two worms share one wavelength on one link: one contention loss per
  // round is guaranteed; stuck lambdas add fault losses on top.
  const auto graph = make_chain(2);
  const auto collection = chain_bundle(graph, 0, 1, 2);
  ProtocolConfig config;
  config.max_rounds = 24;
  config.worm_length = 4;
  config.faults.stuck_wavelength_rate = 0.3;
  const auto result = run_protocol(collection, config, 1, 31);
  std::uint64_t fault = 0, contention = 0;
  for (const RoundReport& round : result.rounds) {
    fault += round.fault_losses;
    contention += round.contention_losses;
    EXPECT_EQ(round.fault_losses,
              round.forward.fault_kills + round.forward.corrupted_arrivals);
    EXPECT_EQ(round.contention_losses,
              round.forward.killed + round.forward.truncated_arrivals);
    // Conservation: every launched worm is delivered, lost to contention,
    // or lost to a fault.
    EXPECT_EQ(round.forward.launched,
              round.forward.delivered + round.fault_losses +
                  round.contention_losses);
  }
  EXPECT_GT(fault, 0u);
  EXPECT_GT(contention, 0u);
}

}  // namespace
}  // namespace opto
