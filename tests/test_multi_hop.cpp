// Bounded-hop routing (§4 extension): segment splitting and the protocol
// driver semantics.
#include <gtest/gtest.h>

#include <memory>

#include "opto/core/multi_hop.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"

namespace opto {
namespace {

MultiHopConfig config_with(std::uint32_t spacing, std::uint32_t L,
                           std::uint16_t B = 1) {
  MultiHopConfig config;
  config.hop_spacing = spacing;
  config.worm_length = L;
  config.bandwidth = B;
  config.max_rounds = 2000;
  return config;
}

TEST(MultiHop, SegmentsPartitionPaths) {
  const auto collection = make_bundle_collection(1, 2, 10);
  FixedSchedule schedule(4);
  MultiHopTrialAndFailure protocol(collection, config_with(4, 2), schedule);
  // 10 links split as 4+4+2 per path.
  EXPECT_EQ(protocol.segment_count(0), 3u);
  EXPECT_EQ(protocol.segments().size(), 6u);
  EXPECT_EQ(protocol.segments().path(0).length(), 4u);
  EXPECT_EQ(protocol.segments().path(2).length(), 2u);
  // Consecutive segments chain: destination of one = source of next.
  EXPECT_EQ(protocol.segments().path(0).destination(),
            protocol.segments().path(1).source());
}

TEST(MultiHop, SpacingBeyondDilationIsPlainRouting) {
  const auto collection = make_bundle_collection(1, 4, 6);
  FixedSchedule schedule(16);
  MultiHopTrialAndFailure protocol(collection, config_with(32, 3), schedule);
  EXPECT_EQ(protocol.segments().size(), 4u);
  const auto result = protocol.run(3);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.max_segments, 1u);
}

TEST(MultiHop, CompletesOnBundle) {
  const auto collection = make_bundle_collection(1, 8, 12);
  FixedSchedule schedule(12);
  MultiHopTrialAndFailure protocol(collection, config_with(3, 2, 2), schedule);
  const auto result = protocol.run(7);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.max_segments, 4u);
  // A worm needs at least max_segments successful rounds.
  for (const std::uint32_t round : result.completion_round)
    EXPECT_GE(round, 4u);
}

TEST(MultiHop, ZeroLengthPathsFinishImmediately) {
  auto graph = std::make_shared<Graph>(2);
  graph->add_edge(0, 1);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0}));
  FixedSchedule schedule(2);
  MultiHopTrialAndFailure protocol(collection, config_with(4, 3), schedule);
  const auto result = protocol.run(1);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.rounds_used, 1u);
}

TEST(MultiHop, DeterministicInSeed) {
  const auto collection = make_bundle_collection(2, 6, 9);
  FixedSchedule schedule(8);
  MultiHopTrialAndFailure protocol(collection, config_with(3, 2), schedule);
  const auto a = protocol.run(11);
  const auto b = protocol.run(11);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
  EXPECT_EQ(a.completion_round, b.completion_round);
}

TEST(MultiHop, BreaksTriangleLivelock) {
  // Hop spacing below the blocking offset m separates the cyclically
  // blocking stretches into different rounds — the livelock dissolves
  // even with no delays and one wavelength.
  const std::uint32_t L = 4;
  const auto collection = make_triangle_collection(1, 10, L);
  NoDelaySchedule schedule;
  auto config = config_with(1, L);
  config.max_rounds = 100;
  MultiHopTrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(5);
  EXPECT_TRUE(result.success);
}

TEST(MultiHop, ChargedTimeUsesSegmentDilation) {
  const auto collection = make_bundle_collection(1, 2, 20);
  FixedSchedule schedule(6);
  MultiHopTrialAndFailure protocol(collection, config_with(5, 3), schedule);
  const auto result = protocol.run(13);
  ASSERT_TRUE(result.success);
  for (const auto& round : result.rounds)
    EXPECT_EQ(round.charged_time, 6 + 2 * (5 + 3));
}

TEST(MultiHop, SegmentCountsAccumulate) {
  const auto collection = make_bundle_collection(1, 4, 8);
  FixedSchedule schedule(8);
  MultiHopTrialAndFailure protocol(collection, config_with(4, 2), schedule);
  const auto result = protocol.run(17);
  ASSERT_TRUE(result.success);
  std::uint64_t deliveries = 0;
  for (const auto& round : result.rounds)
    deliveries += round.segment_deliveries;
  EXPECT_EQ(deliveries, 4u * 2u);  // every worm completes both segments
}

}  // namespace
}  // namespace opto
