#include <gtest/gtest.h>

#include <cmath>

#include "opto/util/stats.hpp"

namespace opto {
namespace {

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(SampleSet, Quantiles) {
  SampleSet set;
  for (int i = 10; i >= 1; --i) set.add(i);
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
  EXPECT_DOUBLE_EQ(set.max(), 10.0);
  EXPECT_DOUBLE_EQ(set.median(), 5.5);
  EXPECT_DOUBLE_EQ(set.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(set.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(set.mean(), 5.5);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet set;
  set.add(0.0);
  set.add(10.0);
  EXPECT_DOUBLE_EQ(set.quantile(0.25), 2.5);
}

TEST(SampleSet, MergeKeepsAll) {
  SampleSet a, b;
  a.add(1.0);
  b.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(SampleSet, StddevMatchesFormula) {
  SampleSet set;
  for (double x : {1.0, 2.0, 3.0, 4.0}) set.add(x);
  EXPECT_NEAR(set.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);
  hist.add(9.9);
  hist.add(-3.0);  // clamps into first bucket
  hist.add(42.0);  // clamps into last bucket
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bucket_hi(1), 4.0);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_EQ(fit_linear({}, {}).slope, 0.0);
  EXPECT_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  // Vertical data (all x equal) cannot be fit.
  EXPECT_EQ(fit_linear({2.0, 2.0}, {1.0, 5.0}).slope, 0.0);
}

}  // namespace
}  // namespace opto
