// Tree lightpath layouts (heavy-path decomposition + chain ladders).
#include <gtest/gtest.h>

#include "opto/paths/tree_layout.hpp"
#include "opto/paths/wavelength_assignment.hpp"

namespace opto {
namespace {

/// A small fixed tree: root 0 with children 1 and 2; 1 has children 3
/// and 4; 2 has child 5; 3 has child 6; 5 has child 7.
std::vector<NodeId> fixture_parents() {
  return {0, 0, 0, 1, 1, 2, 3, 5};
}

TEST(TreeLayout, DepthsAndHeavyPaths) {
  const auto layout = make_tree_layout(fixture_parents(), 2);
  EXPECT_EQ(layout.root, 0u);
  EXPECT_EQ(layout.depth[0], 0u);
  EXPECT_EQ(layout.depth[6], 3u);
  EXPECT_EQ(layout.depth[7], 3u);
  // Every node lies on exactly one heavy path, positions consistent.
  for (NodeId v = 0; v < 8; ++v) {
    const NodeId head = layout.path_head[v];
    EXPECT_EQ(layout.path_nodes[head][layout.path_position[v]], v);
    EXPECT_EQ(layout.path_head[head], head);
  }
  // Heads start their paths at position 0.
  EXPECT_EQ(layout.path_position[layout.path_head[6]], 0u);
}

TEST(TreeLayout, LcaMatchesBruteForce) {
  const auto layout = make_tree_layout(fixture_parents(), 2);
  const auto brute = [&](NodeId a, NodeId b) {
    std::vector<char> seen(8, 0);
    for (NodeId w = a;; w = layout.parent[w]) {
      seen[w] = 1;
      if (w == layout.root) break;
    }
    for (NodeId w = b;; w = layout.parent[w]) {
      if (seen[w]) return w;
      if (w == layout.root) return layout.root;
    }
  };
  for (NodeId a = 0; a < 8; ++a)
    for (NodeId b = 0; b < 8; ++b)
      EXPECT_EQ(tree_lca(layout, a, b), brute(a, b))
          << "lca(" << a << "," << b << ")";
}

TEST(TreeLayout, RoutesChainAndReachDestination) {
  const auto layout = make_tree_layout(fixture_parents(), 2);
  for (NodeId src = 0; src < 8; ++src)
    for (NodeId dst = 0; dst < 8; ++dst) {
      const auto route = tree_layout_route(layout, src, dst);
      if (src == dst) {
        EXPECT_TRUE(route.empty());
        continue;
      }
      ASSERT_FALSE(route.empty()) << src << "->" << dst;
      EXPECT_EQ(route.front().source(), src);
      EXPECT_EQ(route.back().destination(), dst);
      for (std::size_t i = 1; i < route.size(); ++i)
        EXPECT_EQ(route[i].source(), route[i - 1].destination());
    }
}

TEST(TreeLayout, RandomTreesRouteEverywhere) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const auto parents = random_tree_parents(40, rng);
    const auto layout = make_tree_layout(parents, 3);
    for (const auto& [src, dst] : {std::pair<NodeId, NodeId>{0, 39},
                                  {39, 0},
                                  {17, 23},
                                  {38, 39}}) {
      const auto route = tree_layout_route(layout, src, dst);
      if (src == dst) continue;
      ASSERT_FALSE(route.empty());
      EXPECT_EQ(route.front().source(), src);
      EXPECT_EQ(route.back().destination(), dst);
      for (std::size_t i = 1; i < route.size(); ++i)
        EXPECT_EQ(route[i].source(), route[i - 1].destination());
    }
  }
}

TEST(TreeLayout, RouteTunnelsComeFromTheLightpathSet) {
  Rng rng(17);
  const auto parents = random_tree_parents(30, rng);
  const auto layout = make_tree_layout(parents, 2);
  const auto lightpaths = tree_layout_lightpaths(layout);
  const auto contains = [&](const Path& tunnel) {
    for (const Path& candidate : lightpaths.paths())
      if (candidate == tunnel) return true;
    return false;
  };
  for (const auto& [src, dst] :
       {std::pair<NodeId, NodeId>{5, 29}, {29, 5}, {0, 29}, {12, 3}}) {
    for (const Path& tunnel : tree_layout_route(layout, src, dst))
      EXPECT_TRUE(contains(tunnel)) << src << "->" << dst;
  }
}

TEST(TreeLayout, WavelengthCongestionLogarithmic) {
  // A pure chain degenerates to the chain layout: congestion = levels.
  std::vector<NodeId> chain(33);
  chain[0] = 0;
  for (NodeId v = 1; v < 33; ++v) chain[v] = v - 1;
  const auto layout = make_tree_layout(chain, 2);
  EXPECT_EQ(tree_layout_wavelength_congestion(layout), 6u);  // spans 1..32
}

TEST(TreeLayout, HopCongestionTradeoff) {
  Rng rng(21);
  const auto parents = random_tree_parents(60, rng);
  const auto fine = make_tree_layout(parents, 2);
  const auto coarse = make_tree_layout(parents, 16);
  EXPECT_GE(tree_layout_wavelength_congestion(fine),
            tree_layout_wavelength_congestion(coarse));
  EXPECT_LE(tree_layout_max_hops(fine), tree_layout_max_hops(coarse) + 1);
}

TEST(TreeLayout, MaxHopsPolylogOnRandomTrees) {
  Rng rng(23);
  const auto parents = random_tree_parents(64, rng);
  const auto layout = make_tree_layout(parents, 2);
  // ≤ (2·log₂ n crossings) × (hops per heavy path + light hop); very
  // generous polylog cap — a linear-scan layout would be ~n.
  EXPECT_LE(tree_layout_max_hops(layout), 40u);
}

TEST(TreeLayoutDeath, RejectsTwoRoots) {
  EXPECT_DEATH(make_tree_layout({0, 1, 0}, 2), "two roots");
}

TEST(TreeLayoutDeath, RejectsCycle) {
  EXPECT_DEATH(make_tree_layout({1, 2, 1}, 2), "root");
}

}  // namespace
}  // namespace opto
