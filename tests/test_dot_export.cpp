#include <gtest/gtest.h>

#include <memory>

#include "opto/graph/ring.hpp"
#include "opto/paths/dot_export.hpp"

namespace opto {
namespace {

TEST(DotExport, GraphContainsAllEdges) {
  const auto ring = make_ring(4);
  const std::string dot = to_dot(ring);
  EXPECT_NE(dot.find("graph \"ring-4\""), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("3 -- 0"), std::string::npos);
  // 4 undirected edges exactly.
  std::size_t count = 0, pos = 0;
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, 4u);
}

TEST(DotExport, CollectionHighlightsUsedLinks) {
  auto graph = std::make_shared<Graph>(make_ring(5));
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1}));
  const std::string dot = to_dot(collection);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  // The doubly-loaded link 0->1 is labeled 2.
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"2\""), std::string::npos);
  // Unused edges are drawn grey and undirected.
  EXPECT_NE(dot.find("dir=none"), std::string::npos);
  // Sources/destinations are filled.
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(DotExport, EmptyCollectionOnlyGreyEdges) {
  auto graph = std::make_shared<Graph>(make_ring(3));
  PathCollection collection(graph);
  const std::string dot = to_dot(collection);
  EXPECT_EQ(dot.find("penwidth"), std::string::npos);
  EXPECT_NE(dot.find("dir=none"), std::string::npos);
}

}  // namespace
}  // namespace opto
