// The vectorized attempt kernels (sim/attempt_kernel.hpp) against their
// scalar oracle: every lane level must produce byte-identical output on
// every input — including remainder tails, duplicate groups straddling
// lane boundaries, and converts-at-source (merge-bit) masking. The
// level-pinned entry points are used so the tests exercise the vector
// paths at every size, below the auto dispatcher's lane floor.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "opto/par/simd.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/attempt_kernel.hpp"

namespace opto {
namespace {

/// One synthetic key-build scenario: a flat-path table with a random
/// converts-at-source subset, and a running set of worms at random
/// cursor positions and wavelengths.
struct BuildScenario {
  std::vector<WormId> ids;
  std::vector<std::uint32_t> cursor;
  std::vector<std::uint32_t> flat_keys;
  std::vector<std::uint32_t> wl;
  std::uint32_t merge_bit = 0;
  unsigned id_bits = 0;
};

BuildScenario make_build_scenario(std::size_t n, std::uint32_t bandwidth,
                                  double merge_prob, Rng& rng) {
  BuildScenario s;
  const unsigned wl_bits =
      std::bit_width(std::max<std::uint32_t>(bandwidth, 2) - 1);
  s.merge_bit = std::uint32_t{1} << wl_bits;
  s.id_bits = 10;
  const std::uint32_t links = 64;
  const std::uint32_t flat_len = 256;
  s.flat_keys.resize(flat_len);
  for (std::uint32_t j = 0; j < flat_len; ++j) {
    const auto link = static_cast<std::uint32_t>(rng.next_below(links));
    const bool merges =
        rng.next_below(1000) < static_cast<std::uint64_t>(merge_prob * 1000);
    s.flat_keys[j] = (link << (wl_bits + 1)) | (merges ? s.merge_bit : 0u);
  }
  const std::uint32_t worms = 1u << s.id_bits;
  s.cursor.resize(worms);
  s.wl.resize(worms);
  for (std::uint32_t w = 0; w < worms; ++w) {
    s.cursor[w] = static_cast<std::uint32_t>(rng.next_below(flat_len));
    s.wl[w] = static_cast<std::uint32_t>(rng.next_below(bandwidth));
  }
  s.ids.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    s.ids[i] = static_cast<WormId>(rng.next_below(worms));
  return s;
}

void expect_build_matches_oracle(const BuildScenario& s) {
  std::vector<std::uint64_t> oracle(s.ids.size());
  attempt::build_keys_at_level(simd::kLevelScalar, s.ids, s.cursor.data(),
                               s.flat_keys.data(), s.wl.data(), s.merge_bit,
                               s.id_bits, oracle.data());
  for (int level : {simd::kLevelSse2, simd::kLevelAvx2}) {
    std::vector<std::uint64_t> out(s.ids.size(), ~std::uint64_t{0});
    const int used = attempt::build_keys_at_level(
        level, s.ids, s.cursor.data(), s.flat_keys.data(), s.wl.data(),
        s.merge_bit, s.id_bits, out.data());
    EXPECT_LE(used, level);
    EXPECT_EQ(out, oracle) << "level " << simd::level_name(level) << " n "
                           << s.ids.size();
  }
}

TEST(SimdAttempt, BuildKeysMatchesScalarAtEverySmallSize) {
  Rng rng(101);
  // 0..40 covers every SSE2 (4-lane) and AVX2 (8-lane) remainder shape.
  for (std::size_t n = 0; n <= 40; ++n)
    expect_build_matches_oracle(make_build_scenario(n, 4, 0.3, rng));
}

TEST(SimdAttempt, BuildKeysMatchesScalarOnLargeMixedInputs) {
  Rng rng(202);
  for (const std::size_t n : {511u, 512u, 513u, 2000u})
    expect_build_matches_oracle(make_build_scenario(n, 8, 0.5, rng));
}

TEST(SimdAttempt, BuildKeysMasksWavelengthAtConvertingLinks) {
  // All-merge flat table: every emitted key must carry the merge bit and
  // a zero wavelength field regardless of the worm's wavelength.
  Rng rng(303);
  const auto s = make_build_scenario(64, 8, 1.0, rng);
  std::vector<std::uint64_t> out(s.ids.size());
  attempt::build_keys(s.ids, s.cursor.data(), s.flat_keys.data(), s.wl.data(),
                      s.merge_bit, s.id_bits, /*allow_simd=*/true, out.data());
  const std::uint64_t wl_mask = s.merge_bit - 1;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t key = out[i] >> s.id_bits;
    EXPECT_NE(key & s.merge_bit, 0u);
    EXPECT_EQ(key & wl_mask, 0u);
    EXPECT_EQ(out[i] & ((std::uint64_t{1} << s.id_bits) - 1), s.ids[i]);
  }
}

TEST(SimdAttempt, PublicEntryPointIsLaneWidthInvariant) {
  Rng rng(404);
  for (const std::size_t n : {7u, 100u, 600u}) {
    const auto s = make_build_scenario(n, 4, 0.25, rng);
    std::vector<std::uint64_t> scalar(n), lanes(n);
    attempt::build_keys(s.ids, s.cursor.data(), s.flat_keys.data(),
                        s.wl.data(), s.merge_bit, s.id_bits,
                        /*allow_simd=*/false, scalar.data());
    attempt::build_keys(s.ids, s.cursor.data(), s.flat_keys.data(),
                        s.wl.data(), s.merge_bit, s.id_bits,
                        /*allow_simd=*/true, lanes.data());
    EXPECT_EQ(scalar, lanes) << "n " << n;
  }
}

// --- prescan_free_singletons --------------------------------------------

struct PrescanScenario {
  std::vector<std::uint64_t> keys;  ///< sorted attempt words
  std::vector<std::uint32_t> epochs;
  std::vector<SimTime> releases;
  std::uint32_t merge_bit = 0;
  std::uint32_t bandwidth = 0;
  std::uint32_t current_epoch = 0;
  unsigned id_bits = 0;
  SimTime now = 0;
};

PrescanScenario make_prescan_scenario(std::size_t n, std::uint32_t bandwidth,
                                      std::uint32_t links, double dup_prob,
                                      Rng& rng) {
  PrescanScenario s;
  const unsigned wl_bits =
      std::bit_width(std::max<std::uint32_t>(bandwidth, 2) - 1);
  s.merge_bit = std::uint32_t{1} << wl_bits;
  s.bandwidth = bandwidth;
  s.id_bits = 10;
  s.current_epoch = 3;
  s.now = 50;
  s.keys.reserve(n);
  std::uint64_t prev_key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t key;
    // Duplicate the previous group key with probability dup_prob so runs
    // of every length (and at every alignment) appear.
    if (i > 0 &&
        rng.next_below(1000) < static_cast<std::uint64_t>(dup_prob * 1000)) {
      key = prev_key;
    } else {
      const auto link = static_cast<std::uint64_t>(rng.next_below(links));
      const bool merge = rng.next_below(4) == 0;
      const auto wl = static_cast<std::uint64_t>(rng.next_below(bandwidth));
      key = (link << (wl_bits + 1)) | (merge ? s.merge_bit : wl);
    }
    prev_key = key;
    s.keys.push_back((key << s.id_bits) | (i & ((1u << s.id_bits) - 1)));
  }
  std::sort(s.keys.begin(), s.keys.end());
  const std::size_t channels = static_cast<std::size_t>(links) * bandwidth;
  s.epochs.resize(channels);
  s.releases.resize(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    // Mix of: stale epoch (free), live-but-released (free), live-and-held
    // (occupied) — all three free/occupied cases the kernel must read.
    const std::uint64_t kind = rng.next_below(3);
    s.epochs[c] = kind == 0 ? s.current_epoch - 1 : s.current_epoch;
    s.releases[c] = kind == 2 ? s.now + 1 + static_cast<SimTime>(
                                                rng.next_below(100))
                              : static_cast<SimTime>(rng.next_below(51));
  }
  return s;
}

void expect_prescan_matches_oracle(const PrescanScenario& s) {
  std::vector<std::uint8_t> oracle(s.keys.size(), 0xCD);
  attempt::prescan_at_level(simd::kLevelScalar, s.keys, s.id_bits,
                            s.merge_bit, s.bandwidth, s.epochs.data(),
                            s.current_epoch, s.releases.data(), s.now,
                            oracle.data());
  for (int level : {simd::kLevelSse2, simd::kLevelAvx2}) {
    std::vector<std::uint8_t> mask(s.keys.size(), 0xCD);
    const int used = attempt::prescan_at_level(
        level, s.keys, s.id_bits, s.merge_bit, s.bandwidth, s.epochs.data(),
        s.current_epoch, s.releases.data(), s.now, mask.data());
    EXPECT_LE(used, level);
    EXPECT_EQ(mask, oracle) << "level " << simd::level_name(level) << " n "
                            << s.keys.size();
  }
}

TEST(SimdAttempt, PrescanMatchesScalarAtEverySmallSize) {
  Rng rng(505);
  for (std::size_t n = 0; n <= 40; ++n)
    expect_prescan_matches_oracle(make_prescan_scenario(n, 4, 32, 0.3, rng));
}

TEST(SimdAttempt, PrescanMatchesScalarOnLargeInputs) {
  Rng rng(606);
  for (const std::size_t n : {511u, 512u, 513u, 3000u}) {
    // Sweep duplicate density: all-singleton, mixed, duplicate-heavy.
    expect_prescan_matches_oracle(make_prescan_scenario(n, 2, 512, 0.0, rng));
    expect_prescan_matches_oracle(make_prescan_scenario(n, 4, 64, 0.4, rng));
    expect_prescan_matches_oracle(make_prescan_scenario(n, 2, 8, 0.9, rng));
  }
}

TEST(SimdAttempt, PrescanHandlesRunsStraddlingLaneBoundaries) {
  // Hand-built worst case: duplicate pairs placed so one element of each
  // pair falls in a vector body lane and its twin in the scalar head or
  // tail — the exact seams a sub-range implementation would get wrong.
  Rng rng(707);
  for (const std::size_t n : {9u, 12u, 17u, 33u}) {
    auto s = make_prescan_scenario(n, 2, 16, 0.0, rng);
    auto twin = [&](std::size_t a, std::size_t b) {
      s.keys[b] = (s.keys[a] >> s.id_bits << s.id_bits) | (s.keys[b] & 1023u);
    };
    std::sort(s.keys.begin(), s.keys.end());
    twin(0, 1);                // head seam
    twin(n - 2, n - 1);        // tail seam
    if (n > 6) twin(4, 5);     // body lane seam (SSE2 pair width)
    std::sort(s.keys.begin(), s.keys.end());
    expect_prescan_matches_oracle(s);
  }
}

TEST(SimdAttempt, PrescanFlagsOnlyFreeSingletonNonMergeKeys) {
  // Semantic spot-check of the scalar oracle itself on a hand-laid array:
  // keys (link, merge, wl) with id_bits = 4, bandwidth = 2, wl_bits = 1.
  const unsigned id_bits = 4;
  const std::uint32_t merge_bit = 2;
  const auto word = [&](std::uint64_t link, bool merge, std::uint64_t wl,
                        std::uint64_t id) {
    return ((link << 2) | (merge ? 2u : wl)) << id_bits | id;
  };
  const std::vector<std::uint64_t> keys = {
      word(0, false, 0, 1),  // singleton, channel 0
      word(1, false, 1, 2),  // duplicate pair on channel 3
      word(1, false, 1, 3),
      word(2, true, 0, 4),   // singleton but merge-keyed
      word(3, false, 0, 5),  // singleton, channel 6 (occupied below)
  };
  // Channels: link * 2 + wl. Mark channel 6 held past `now`.
  std::vector<std::uint32_t> epochs(8, 1);
  std::vector<SimTime> releases(8, 0);
  epochs[6] = 1;
  releases[6] = 100;
  std::vector<std::uint8_t> mask(keys.size(), 0xCD);
  attempt::prescan_free_singletons(keys, id_bits, merge_bit, 2, epochs.data(),
                                   /*current_epoch=*/1, releases.data(),
                                   /*now=*/10, /*allow_simd=*/true,
                                   mask.data());
  EXPECT_EQ(mask[0], 1);  // free singleton
  EXPECT_EQ(mask[1], 0);  // duplicate
  EXPECT_EQ(mask[2], 0);  // duplicate
  EXPECT_EQ(mask[3], 0);  // merge key
  EXPECT_EQ(mask[4], 0);  // channel occupied
}

}  // namespace
}  // namespace opto
