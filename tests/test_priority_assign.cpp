#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "opto/core/priority_assign.hpp"

namespace opto {
namespace {

TEST(PriorityAssign, RandomPermutationIsDistinct) {
  Rng rng(1);
  const std::vector<PathId> active{3, 5, 9, 11, 20};
  const auto ranks = assign_priorities(PriorityStrategy::RandomPermutation,
                                       active, 32, rng);
  ASSERT_EQ(ranks.size(), active.size());
  const std::set<std::uint32_t> unique(ranks.begin(), ranks.end());
  EXPECT_EQ(unique.size(), ranks.size());
  for (std::uint32_t r : ranks) EXPECT_LT(r, active.size());
}

TEST(PriorityAssign, RandomPermutationVariesAcrossRounds) {
  const std::vector<PathId> active(64, 0);
  std::vector<PathId> ids(64);
  for (std::uint32_t i = 0; i < 64; ++i) ids[i] = i;
  Rng rng1(7), rng2(8);
  const auto a =
      assign_priorities(PriorityStrategy::RandomPermutation, ids, 64, rng1);
  const auto b =
      assign_priorities(PriorityStrategy::RandomPermutation, ids, 64, rng2);
  EXPECT_NE(a, b);
}

TEST(PriorityAssign, FixedByPathUsesPathIds) {
  Rng rng(1);
  const std::vector<PathId> active{4, 2, 7};
  const auto ranks =
      assign_priorities(PriorityStrategy::FixedByPath, active, 8, rng);
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{4, 2, 7}));
}

TEST(PriorityAssign, AdversarialMatchesFixed) {
  Rng rng(1);
  const std::vector<PathId> active{0, 1, 2, 3};
  const auto ranks =
      assign_priorities(PriorityStrategy::AdversarialByPath, active, 4, rng);
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(PriorityAssign, ReverseByPathInverts) {
  Rng rng(1);
  const std::vector<PathId> active{0, 3};
  const auto ranks =
      assign_priorities(PriorityStrategy::ReverseByPath, active, 4, rng);
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{3, 0}));
}

TEST(PriorityAssign, StrategyNames) {
  EXPECT_STREQ(to_string(PriorityStrategy::RandomPermutation),
               "random-permutation");
  EXPECT_STREQ(to_string(PriorityStrategy::AdversarialByPath),
               "adversarial-by-path");
}

}  // namespace
}  // namespace opto
