// Bench-harness plumbing: parallel trials, determinism, scaling.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>

#include "opto/benchsupport/experiment.hpp"
#include "opto/paths/lowerbound_structures.hpp"

namespace opto {
namespace {

CollectionFactory bundle_factory(std::uint32_t width, std::uint32_t length) {
  return [width, length](std::uint64_t /*seed*/) {
    return make_bundle_collection(1, width, length);
  };
}

TEST(Experiment, RunsAllTrials) {
  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 4;
  config.max_rounds = 100;
  const auto aggregate =
      run_trials(bundle_factory(8, 10), paper_schedule_factory(4, 2), config,
                 16, /*base_seed=*/1);
  EXPECT_EQ(aggregate.rounds.count() + aggregate.failures, 16u);
  EXPECT_EQ(aggregate.failures, 0u);
  EXPECT_GE(aggregate.rounds.min(), 1.0);
  EXPECT_DOUBLE_EQ(aggregate.path_congestion.mean(), 7.0);
  EXPECT_DOUBLE_EQ(aggregate.dilation.mean(), 10.0);
}

TEST(Experiment, DeterministicInBaseSeed) {
  ProtocolConfig config;
  config.bandwidth = 1;
  config.worm_length = 3;
  config.max_rounds = 100;
  const auto a = run_trials(bundle_factory(6, 8),
                            paper_schedule_factory(3, 1), config, 8, 42);
  const auto b = run_trials(bundle_factory(6, 8),
                            paper_schedule_factory(3, 1), config, 8, 42);
  EXPECT_DOUBLE_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_DOUBLE_EQ(a.charged_time.mean(), b.charged_time.mean());
}

TEST(Experiment, FailureCounted) {
  // One wavelength, no delay range would livelock a triangle; the paper
  // schedule succeeds, so force failure via max_rounds = 1 on a congested
  // bundle instead.
  ProtocolConfig config;
  config.bandwidth = 1;
  config.worm_length = 8;
  config.max_rounds = 1;
  ScheduleFactory no_delay = [](const PathCollection&) {
    return std::unique_ptr<DeltaSchedule>(new NoDelaySchedule());
  };
  const auto aggregate =
      run_trials(bundle_factory(16, 10), no_delay, config, 4, 7);
  EXPECT_EQ(aggregate.failures, 4u);
}

TEST(Experiment, ResultsDirPersistsCsvAndJson) {
  const std::string dir =
      ::testing::TempDir() + "opto_results_" +
      std::to_string(::getpid());
  ASSERT_EQ(::setenv("OPTO_RESULTS_DIR", dir.c_str(), 1), 0);
  Table table("demo table, B=2 (L=4)");
  table.set_header({"x", "y"});
  table.row().cell(1).cell(2.5);
  print_experiment_table(table);
  ASSERT_EQ(::unsetenv("OPTO_RESULTS_DIR"), 0);

  std::ifstream csv(dir + "/demo-table-b-2-l-4.csv");
  ASSERT_TRUE(csv.good());
  std::string line;
  std::getline(csv, line);
  EXPECT_EQ(line, "x,y");
  std::ifstream json(dir + "/demo-table-b-2-l-4.json");
  ASSERT_TRUE(json.good());
  std::getline(json, line);
  EXPECT_NE(line.find("\"title\":\"demo table, B=2 (L=4)\""),
            std::string::npos);
}

TEST(Experiment, NoResultsDirMeansNoFiles) {
  ASSERT_EQ(::unsetenv("OPTO_RESULTS_DIR"), 0);
  Table table("unsaved");
  table.set_header({"a"});
  table.row().cell(1);
  print_experiment_table(table);  // prints only; nothing to assert beyond
  SUCCEED();                      // not crashing without the env var
}

TEST(Experiment, ScaledTrialsAtLeastOne) {
  EXPECT_GE(scaled_trials(1), 1u);
  EXPECT_GE(scaled_trials(100), 1u);
}

TEST(Experiment, ReproScaleInRange) {
  const double scale = repro_scale();
  EXPECT_GE(scale, 0.05);
  EXPECT_LE(scale, 100.0);
}

TEST(Experiment, ReproScaleParsesValidValues) {
  ASSERT_EQ(::setenv("REPRO_SCALE", "0.25", 1), 0);
  EXPECT_DOUBLE_EQ(repro_scale(), 0.25);
  ASSERT_EQ(::setenv("REPRO_SCALE", "250", 1), 0);  // clamped to 100
  EXPECT_DOUBLE_EQ(repro_scale(), 100.0);
  ASSERT_EQ(::setenv("REPRO_SCALE", "", 1), 0);  // empty = unset = 1
  EXPECT_DOUBLE_EQ(repro_scale(), 1.0);
  ASSERT_EQ(::unsetenv("REPRO_SCALE"), 0);
  EXPECT_DOUBLE_EQ(repro_scale(), 1.0);
}

TEST(ExperimentDeathTest, ReproScaleRejectsGarbage) {
  // A set-but-unparseable or non-positive scale used to fall through
  // silently; it must now be a hard exit(2) with a pointed message.
  ASSERT_EQ(::setenv("REPRO_SCALE", "fast", 1), 0);
  EXPECT_EXIT(repro_scale(), ::testing::ExitedWithCode(2),
              "not a positive number");
  ASSERT_EQ(::setenv("REPRO_SCALE", "0", 1), 0);
  EXPECT_EXIT(repro_scale(), ::testing::ExitedWithCode(2),
              "not a positive number");
  ASSERT_EQ(::setenv("REPRO_SCALE", "-1", 1), 0);
  EXPECT_EXIT(repro_scale(), ::testing::ExitedWithCode(2),
              "not a positive number");
  ASSERT_EQ(::setenv("REPRO_SCALE", "nan", 1), 0);
  EXPECT_EXIT(repro_scale(), ::testing::ExitedWithCode(2),
              "not a positive number");
  ASSERT_EQ(::unsetenv("REPRO_SCALE"), 0);
}

}  // namespace
}  // namespace opto
