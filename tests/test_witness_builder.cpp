// Empirical witness trees (Definition 2.1–2.3, Lemma 2.2) reconstructed
// from real protocol runs.
#include <gtest/gtest.h>

#include "opto/analysis/witness_builder.hpp"
#include "opto/paths/lowerbound_structures.hpp"

namespace opto {
namespace {

ProtocolConfig recording_config(std::uint32_t L, std::uint32_t max_rounds) {
  ProtocolConfig config;
  config.worm_length = L;
  config.max_rounds = max_rounds;
  config.keep_round_outcomes = true;
  return config;
}

TEST(WitnessBuilder, TriangleLivelockTree) {
  // Deterministic: the triangle under no-delay serve-first fails forever;
  // each worm's witness at every round is the next worm in the cycle.
  const std::uint32_t L = 4;
  const auto collection = make_triangle_collection(1, 10, L);
  const auto config = recording_config(L, 6);
  NoDelaySchedule schedule;
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(3);
  ASSERT_FALSE(result.success);

  const auto tree = build_witness_tree(result, 0, 6);
  EXPECT_EQ(tree.root, 0u);
  EXPECT_EQ(tree.depth, 6u);
  EXPECT_TRUE(is_valid_witness_tree(tree));
  // All three worms appear by level 2 and the set saturates.
  const auto sizes = tree.level_sizes();
  ASSERT_EQ(sizes.size(), 7u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 3u);
  EXPECT_EQ(sizes[6], 3u);
  EXPECT_EQ(tree.total_distinct_worms(), 3u);
}

TEST(WitnessBuilder, NewWormCountsSumToK) {
  const std::uint32_t L = 4;
  const auto collection = make_triangle_collection(2, 10, L);
  const auto config = recording_config(L, 4);
  NoDelaySchedule schedule;
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(5);
  ASSERT_FALSE(result.success);

  const auto tree = build_witness_tree(result, 3, 4);
  const auto fresh = tree.new_worm_counts();
  std::uint32_t total = 0;
  for (const std::uint32_t f : fresh) total += f;
  EXPECT_EQ(total, tree.total_distinct_worms());
  // Structures are disjoint: worms of the other triangle never appear.
  EXPECT_LE(tree.total_distinct_worms(), 3u);
}

TEST(WitnessBuilder, BundleThrashTreeIsValid) {
  // Randomized bundle congestion: whatever the collision pattern, the
  // reconstructed tree must satisfy Definition 2.1.
  const std::uint32_t L = 6;
  const auto collection = make_bundle_collection(1, 24, 8);
  auto config = recording_config(L, 50);
  FixedSchedule schedule(4);  // tight range keeps worms failing a while
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(21);

  // Find a worm that survived at least 3 rounds.
  PathId victim = kInvalidPath;
  std::uint32_t depth = 0;
  for (PathId id = 0; id < collection.size(); ++id) {
    const std::uint32_t done = result.completion_round[id];
    const std::uint32_t lasted =
        done == 0 ? result.rounds_used : done - 1;
    if (lasted >= 3 && lasted > depth) {
      victim = id;
      depth = std::min(lasted, 6u);
    }
  }
  ASSERT_NE(victim, kInvalidPath) << "no worm failed 3+ rounds; tighten Δ";
  const auto tree = build_witness_tree(result, victim, depth);
  EXPECT_TRUE(is_valid_witness_tree(tree));
  EXPECT_LE(tree.total_distinct_worms(), collection.size());
  // Level sizes never shrink.
  const auto sizes = tree.level_sizes();
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_GE(sizes[i], sizes[i - 1]);
}

TEST(WitnessBuilder, ValidityCatchesCorruption) {
  WitnessTree tree;
  tree.root = 0;
  tree.depth = 1;
  tree.levels.resize(2);
  tree.levels[0].worms = {0};
  tree.levels[1].worms = {0, 1};
  tree.levels[1].collisions = {{0, 1}};
  EXPECT_TRUE(is_valid_witness_tree(tree));

  auto self_witness = tree;
  self_witness.levels[1].collisions = {{0, 0}};
  EXPECT_FALSE(is_valid_witness_tree(self_witness));

  auto missing_witness = tree;
  missing_witness.levels[1].collisions.clear();
  EXPECT_FALSE(is_valid_witness_tree(missing_witness));

  auto double_witness = tree;
  double_witness.levels[1].worms = {0, 1, 2};
  double_witness.levels[1].collisions = {{0, 1}, {0, 2}};
  EXPECT_FALSE(is_valid_witness_tree(double_witness));
}

TEST(WitnessBuilder, DotRenderingContainsLevelsAndEdges) {
  const auto collection = make_triangle_collection(1, 10, 4);
  const auto config = recording_config(4, 3);
  NoDelaySchedule schedule;
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(2);
  const auto tree = build_witness_tree(result, 1, 3);
  const std::string dot = witness_tree_to_dot(tree);
  EXPECT_NE(dot.find("digraph witness"), std::string::npos);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
  // One collision edge per old worm per level: 1 + 2 + 3 = 6 solid edges.
  std::size_t solid = 0, pos = 0;
  while ((pos = dot.find("#ee6677", pos)) != std::string::npos) {
    ++solid;
    ++pos;
  }
  EXPECT_EQ(solid, 6u);
  // Level-qualified node ids keep repeated worms distinct.
  EXPECT_NE(dot.find("\"L0w1\""), std::string::npos);
  EXPECT_NE(dot.find("\"L3w"), std::string::npos);
}

TEST(WitnessBuilderDeath, RequiresRecordedRounds) {
  const auto collection = make_triangle_collection(1, 10, 4);
  ProtocolConfig config;
  config.worm_length = 4;
  config.max_rounds = 3;
  NoDelaySchedule schedule;
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(3);
  EXPECT_DEATH(build_witness_tree(result, 0, 2), "keep_round_outcomes");
}

}  // namespace
}  // namespace opto
