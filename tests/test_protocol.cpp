// Integration tests of the Trial-and-Failure protocol driver.
#include <gtest/gtest.h>

#include <memory>

#include "opto/core/trial_and_failure.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/dimension_order.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"

namespace opto {
namespace {

ProtocolConfig base_config(std::uint16_t B, std::uint32_t L) {
  ProtocolConfig config;
  config.bandwidth = B;
  config.worm_length = L;
  config.max_rounds = 200;
  return config;
}

ProblemShape shape_of(const PathCollection& collection, std::uint32_t L,
                      std::uint16_t B) {
  ProblemShape shape;
  shape.size = collection.size();
  shape.dilation = collection.dilation();
  shape.path_congestion = collection.path_congestion();
  shape.worm_length = L;
  shape.bandwidth = B;
  return shape;
}

TEST(Protocol, RoutesTorusPermutation) {
  auto topo = std::make_shared<MeshTopology>(make_torus({4, 4}));
  std::shared_ptr<const Graph> graph(topo, &topo->graph);
  Rng rng(1);
  const auto perm = random_permutation(16, rng);
  PathCollection collection(graph);
  for (NodeId s = 0; s < 16; ++s)
    collection.add(dimension_order_path(*topo, s, perm[s]));

  const auto config = base_config(2, 4);
  PaperSchedule schedule(shape_of(collection, 4, 2));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(99);

  EXPECT_TRUE(result.success);
  EXPECT_GE(result.rounds_used, 1u);
  EXPECT_EQ(result.rounds.size(), result.rounds_used);
  for (std::uint32_t round : result.completion_round) {
    EXPECT_GE(round, 1u);
    EXPECT_LE(round, result.rounds_used);
  }
  // Charged time accounting: Σ (Δ_t + 2(D+L)).
  SimTime expected = 0;
  for (const auto& report : result.rounds) {
    expected += report.charged_time;
    EXPECT_EQ(report.charged_time,
              report.delta + 2 * (collection.dilation() + 4));
  }
  EXPECT_EQ(result.total_charged_time, expected);
}

TEST(Protocol, DeterministicInSeed) {
  const auto collection = make_bundle_collection(2, 8, 6);
  const auto config = base_config(2, 3);
  PaperSchedule schedule(shape_of(collection, 3, 2));
  TrialAndFailure protocol(collection, config, schedule);
  const auto a = protocol.run(7);
  const auto b = protocol.run(7);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
  EXPECT_EQ(a.total_charged_time, b.total_charged_time);
  EXPECT_EQ(a.completion_round, b.completion_round);
  // The seed matters: on this easy workload a single other seed can
  // coincide round-for-round by chance, so probe a few.
  bool any_different = false;
  for (std::uint64_t s = 8; s < 16 && !any_different; ++s) {
    const auto c = protocol.run(s);
    any_different = a.rounds_used != c.rounds_used ||
                    a.completion_round != c.completion_round;
  }
  EXPECT_TRUE(any_different);
}

TEST(Protocol, ActiveSetShrinksMonotonically) {
  const auto collection = make_bundle_collection(1, 32, 10);
  const auto config = base_config(1, 4);
  PaperSchedule schedule(shape_of(collection, 4, 1));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(3);
  ASSERT_TRUE(result.success);
  for (std::size_t i = 1; i < result.rounds.size(); ++i)
    EXPECT_EQ(result.rounds[i].active_before,
              result.rounds[i - 1].active_before -
                  result.rounds[i - 1].acknowledged);
}

TEST(Protocol, TriangleWithNoDelayNeverFinishesServeFirst) {
  // Deterministic livelock: Δ = 1 forces equal delays, B = 1 forces one
  // wavelength, so the three worms eliminate each other every round — the
  // mechanism of the Main Theorem 1.2 lower bound.
  const auto collection = make_triangle_collection(1, 8, 4);
  auto config = base_config(1, 4);
  config.max_rounds = 30;
  NoDelaySchedule schedule;
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(5);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.rounds_used, 30u);
  for (const auto& report : result.rounds)
    EXPECT_EQ(report.delivered, 0u);
}

TEST(Protocol, TriangleWithNoDelayFinishesUnderPriority) {
  // Same adversarial setup, priority routers: someone always wins, so the
  // protocol drains in ≤ 3 rounds (Main Theorem 1.3's separation).
  const auto collection = make_triangle_collection(1, 8, 4);
  auto config = base_config(1, 4);
  config.rule = ContentionRule::Priority;
  NoDelaySchedule schedule;
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(5);
  EXPECT_TRUE(result.success);
  EXPECT_LE(result.rounds_used, 3u);
}

TEST(Protocol, SimulatedAcksEventuallyComplete) {
  const auto collection = make_bundle_collection(1, 12, 6);
  auto config = base_config(2, 4);
  config.ack_mode = AckMode::Simulated;
  PaperSchedule schedule(shape_of(collection, 4, 2));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(11);
  EXPECT_TRUE(result.success);
  // Every worm delivered at least once; lost acks show up as duplicates.
  std::uint64_t total_acked = 0;
  for (const auto& report : result.rounds) total_acked += report.acknowledged;
  EXPECT_EQ(total_acked, collection.size());
}

TEST(Protocol, IdealAcksNeverDuplicate) {
  const auto collection = make_bundle_collection(1, 16, 8);
  const auto config = base_config(1, 4);
  PaperSchedule schedule(shape_of(collection, 4, 1));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(13);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.duplicate_deliveries, 0u);
}

TEST(Protocol, TracksCongestionDecay) {
  const auto collection = make_bundle_collection(1, 64, 8);
  auto config = base_config(1, 2);
  config.track_congestion = true;
  PaperSchedule schedule(shape_of(collection, 2, 1));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(17);
  ASSERT_TRUE(result.success);
  ASSERT_GE(result.rounds.size(), 1u);
  EXPECT_EQ(result.rounds.front().active_congestion, 63u);
  // Congestion never increases (worms only retire).
  for (std::size_t i = 1; i < result.rounds.size(); ++i)
    EXPECT_LE(result.rounds[i].active_congestion,
              result.rounds[i - 1].active_congestion);
}

TEST(Protocol, ZeroLengthPathsFinishInOneRound) {
  auto graph = std::make_shared<Graph>(3);
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  PathCollection collection(graph);
  for (NodeId u = 0; u < 3; ++u)
    collection.add(Path::from_nodes(*graph, std::vector<NodeId>{u}));
  const auto config = base_config(1, 5);
  FixedSchedule schedule(4);
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(19);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.rounds_used, 1u);
}

TEST(Protocol, AdversarialPrioritiesOnStaircase) {
  // §2.2's adversary: rank i on path i. The protocol still completes (the
  // upper bound holds for any distinct ranks), it just pays more rounds.
  const auto collection = make_staircase_collection(2, 6, 16, 4);
  auto config = base_config(1, 4);
  config.rule = ContentionRule::Priority;
  config.priorities = PriorityStrategy::AdversarialByPath;
  PaperSchedule schedule(shape_of(collection, 4, 1));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(23);
  EXPECT_TRUE(result.success);
}

}  // namespace
}  // namespace opto
