#include <gtest/gtest.h>

#include <memory>

#include "opto/paths/path.hpp"

namespace opto {
namespace {

Graph chain(NodeId n) {
  Graph graph(n);
  for (NodeId u = 0; u + 1 < n; ++u) graph.add_edge(u, u + 1);
  return graph;
}

TEST(Path, FromNodes) {
  const auto graph = chain(4);
  const auto path =
      Path::from_nodes(graph, std::vector<NodeId>{0, 1, 2, 3});
  EXPECT_EQ(path.source(), 0u);
  EXPECT_EQ(path.destination(), 3u);
  EXPECT_EQ(path.length(), 3u);
  EXPECT_FALSE(path.empty());
  EXPECT_EQ(path.nodes(graph), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Path, SingleNodeIsEmptyPath) {
  const auto graph = chain(2);
  const auto path = Path::from_nodes(graph, std::vector<NodeId>{1});
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(path.source(), 1u);
  EXPECT_EQ(path.destination(), 1u);
}

TEST(Path, BackwardTraversalUsesReverseLinks) {
  const auto graph = chain(3);
  const auto forward = Path::from_nodes(graph, std::vector<NodeId>{0, 1, 2});
  const auto backward = Path::from_nodes(graph, std::vector<NodeId>{2, 1, 0});
  EXPECT_EQ(backward.link(0), Graph::reverse(forward.link(1)));
  EXPECT_EQ(backward.link(1), Graph::reverse(forward.link(0)));
}

TEST(Path, Reversed) {
  const auto graph = chain(4);
  const auto path = Path::from_nodes(graph, std::vector<NodeId>{0, 1, 2, 3});
  const auto rev = path.reversed();
  EXPECT_EQ(rev.source(), 3u);
  EXPECT_EQ(rev.destination(), 0u);
  EXPECT_EQ(rev.nodes(graph), (std::vector<NodeId>{3, 2, 1, 0}));
  EXPECT_EQ(rev.reversed(), path);
}

TEST(Path, FromLinks) {
  const auto graph = chain(4);
  std::vector<EdgeId> links{graph.find_link(1, 2), graph.find_link(2, 3)};
  const auto path = Path::from_links(graph, links);
  EXPECT_EQ(path.source(), 1u);
  EXPECT_EQ(path.destination(), 3u);
  EXPECT_EQ(path.length(), 2u);
}

TEST(PathDeath, RejectsNonAdjacent) {
  const auto graph = chain(4);
  EXPECT_DEATH(Path::from_nodes(graph, std::vector<NodeId>{0, 2}),
               "not adjacent");
}

TEST(PathDeath, RejectsRevisit) {
  const auto graph = chain(4);
  EXPECT_DEATH(Path::from_nodes(graph, std::vector<NodeId>{0, 1, 0}),
               "simple");
}

TEST(PathDeath, RejectsNonConsecutiveLinks) {
  const auto graph = chain(4);
  std::vector<EdgeId> links{graph.find_link(0, 1), graph.find_link(2, 3)};
  EXPECT_DEATH(Path::from_links(graph, links), "consecutive");
}

}  // namespace
}  // namespace opto
