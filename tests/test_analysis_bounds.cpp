// Closed-form bound evaluators: algebraic identities and growth shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "opto/analysis/bounds.hpp"

namespace opto {
namespace {

ProblemShape shape(std::uint32_t n, std::uint32_t D, std::uint32_t C,
                   std::uint32_t L, std::uint16_t B) {
  ProblemShape s;
  s.size = n;
  s.dilation = D;
  s.path_congestion = C;
  s.worm_length = L;
  s.bandwidth = B;
  return s;
}

TEST(Bounds, AlphaBetaFormulas) {
  // α = C̃ + B(D/L + 1) + 2, β = α/C̃ + 2.
  const auto s = shape(1024, 20, 100, 4, 2);
  EXPECT_DOUBLE_EQ(bound_alpha(s), 100 + 2 * (20.0 / 4 + 1) + 2);
  EXPECT_DOUBLE_EQ(bound_beta(s), bound_alpha(s) / 100.0 + 2.0);
}

TEST(Bounds, LogBase) {
  EXPECT_DOUBLE_EQ(log_base(2.0, 8.0), 3.0);
  EXPECT_NEAR(log_base(10.0, 1000.0), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(log_base(2.0, 1.0), 0.0);
  // Degenerate base clamps instead of dividing by zero.
  EXPECT_GT(log_base(1.0, 100.0), 0.0);
}

TEST(Bounds, LeveledRoundsGrowsWithN) {
  const auto small = shape(1u << 8, 10, 64, 4, 1);
  const auto large = shape(1u << 24, 10, 64, 4, 1);
  EXPECT_LT(rounds_leveled(small), rounds_leveled(large));
}

TEST(Bounds, ShortcutFreeRoundsDominateLeveled) {
  // log_α n ≥ √(log_α n) whenever log_α n ≥ 1.
  const auto s = shape(1u << 20, 16, 32, 4, 1);
  EXPECT_GE(rounds_shortcut_free(s), rounds_leveled(s));
}

TEST(Bounds, RuntimeHasCongestionTerm) {
  // Doubling C̃ roughly doubles the first term; with D = 0 and huge C̃ the
  // bound is dominated by L·C̃/B.
  const auto s1 = shape(1024, 0, 1 << 14, 8, 1);
  auto s2 = s1;
  s2.path_congestion <<= 1;
  EXPECT_NEAR(runtime_leveled(s2) / runtime_leveled(s1), 2.0, 0.3);
}

TEST(Bounds, RuntimeScalesInverselyWithBandwidth) {
  const auto s1 = shape(1024, 0, 1 << 14, 8, 1);
  auto s8 = s1;
  s8.bandwidth = 8;
  EXPECT_GT(runtime_leveled(s1) / runtime_leveled(s8), 4.0);
}

TEST(Bounds, MeshFormulaDimensions) {
  // Thm 1.6: leading term L·d·n/B.
  const double base = runtime_mesh(64, 2, 8, 1);
  EXPECT_GT(runtime_mesh(64, 3, 8, 1), base);
  EXPECT_LT(runtime_mesh(64, 2, 8, 4), base);
  EXPECT_GT(runtime_mesh(128, 2, 8, 1), base);
}

TEST(Bounds, ButterflyFormulaQScaling) {
  const double q1 = runtime_butterfly(1 << 10, 1, 16, 1);
  const double q8 = runtime_butterfly(1 << 10, 8, 16, 1);
  EXPECT_GT(q8, q1);
  // The congestion term scales linearly in q; the round term shrinks.
  EXPECT_LT(q8 / q1, 8.0);
}

TEST(Bounds, NodeSymmetricDiameterSquared) {
  const double d10 = runtime_node_symmetric(1024, 10, 4, 1);
  const double d20 = runtime_node_symmetric(1024, 20, 4, 1);
  // L·D²/B term: quadrupling expected (modulo round terms).
  EXPECT_GT(d20 / d10, 2.5);
}

TEST(Bounds, LowerBoundShapes) {
  const auto s = shape(1u << 20, 16, 64, 4, 1);
  // triangle (log) dominates staircase (sqrt log).
  EXPECT_GT(lower_rounds_triangle(s), lower_rounds_staircase(s));
  EXPECT_GT(lower_rounds_staircase(s), 0.0);
  EXPECT_GT(lower_rounds_bundle(s), 0.0);
  // Staircase lower bound matches the leveled upper bound's first term.
  EXPECT_NEAR(lower_rounds_staircase(s) * lower_rounds_staircase(s),
              log_base(bound_alpha(s), s.size), 1e-9);
}

TEST(Bounds, PaperK0MatchesWitnessK0Formula) {
  const auto s = shape(1u << 12, 16, 64, 4, 2);
  // Same algebra as witness_k0 (analysis/witness_tree.hpp).
  const double base =
      2.0 + 2.0 * (16.0 / 4.0 + 1.0) / (16.0 * 64.0);
  EXPECT_NEAR(paper_k0(s, 1.0), 3.0 * 12.0 / std::log2(base) + 1.0, 1e-9);
}

TEST(Bounds, PaperRoundBudgetGrowsSublinearly) {
  // The explicit T of §2.1 should grow much slower than log n.
  const auto small = shape(1u << 10, 16, 256, 4, 1);
  const auto large = shape(1u << 20, 16, 256, 4, 1);
  const double t_small = paper_round_budget(small);
  const double t_large = paper_round_budget(large);
  EXPECT_GT(t_large, t_small);
  EXPECT_LT(t_large / t_small, 2.0);  // doubling log n far from doubles T
  EXPECT_TRUE(std::isfinite(paper_round_budget(shape(2, 0, 0, 1, 1))));
}

TEST(Bounds, PaperRoundBudgetAlwaysCoversAFewRounds) {
  // T includes ⌈log k₀⌉ ≥ 1 and a positive sqrt term on every shape.
  for (const std::uint32_t n : {4u, 1u << 8, 1u << 16})
    for (const std::uint32_t C : {1u, 64u, 1u << 12}) {
      const double budget = paper_round_budget(shape(n, 8, C, 4, 2));
      EXPECT_GE(budget, 1.0) << "n=" << n << " C=" << C;
      EXPECT_TRUE(std::isfinite(budget));
    }
}

TEST(Bounds, DegenerateShapesFinite) {
  const auto s = shape(0, 0, 0, 1, 1);
  EXPECT_TRUE(std::isfinite(rounds_leveled(s)));
  EXPECT_TRUE(std::isfinite(runtime_leveled(s)));
  EXPECT_TRUE(std::isfinite(runtime_shortcut_free(s)));
  EXPECT_TRUE(std::isfinite(runtime_mesh(1, 1, 1, 1)));
  EXPECT_TRUE(std::isfinite(runtime_butterfly(1, 1, 1, 1)));
}

}  // namespace
}  // namespace opto
