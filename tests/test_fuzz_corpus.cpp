// Replays every committed corpus case in tier-1: each file must be in
// canonical byte form (so replays are bit-identical), build, and pass
// the full differential check. The corpus holds minimized reproducers of
// fixed divergences plus distilled behavior anchors (a kill, a
// truncation, a retune, a fault kill, a corrupted arrival) — if an
// engine change flips any of their outcomes, this test names the file.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "opto/testlib/differ.hpp"
#include "opto/testlib/fuzz_case.hpp"

namespace opto::testlib {
namespace {

std::vector<std::string> corpus_files() {
#ifdef OPTO_CORPUS_DIR
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(OPTO_CORPUS_DIR, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
#else
  return {};
#endif
}

TEST(FuzzCorpus, EveryCaseIsCanonicalAndDiffsClean) {
  const std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty()) << "tests/corpus/ has no cases";
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    ASSERT_TRUE(in.good()) << file;
    std::ostringstream os;
    os << in.rdbuf();
    const std::string bytes = os.str();

    std::string error;
    const auto fuzz = parse_case(bytes, &error);
    ASSERT_TRUE(fuzz.has_value()) << file << ": " << error;
    EXPECT_EQ(canonical_json(*fuzz), bytes)
        << file << " is not canonical; rewrite it with canonical_json()";

    const DiffReport report = diff_case(*fuzz);
    EXPECT_TRUE(report.ok()) << file << ":\n" << report.summary();
  }
}

}  // namespace
}  // namespace opto::testlib
