// Generator determinism — the property the replayable corpus rests on:
// generate_case(seed, index) must be a pure function of its arguments,
// independent of thread settings, environment, and process boundaries.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "opto/testlib/differ.hpp"
#include "opto/testlib/fuzz_case.hpp"
#include "opto/testlib/generator.hpp"

namespace opto::testlib {
namespace {

constexpr std::uint64_t kSeed = 0xa11ce5ull;

TEST(Generator, SameSeedSameBytesInProcess) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::string first = canonical_json(generate_case(kSeed, i));
    const std::string second = canonical_json(generate_case(kSeed, i));
    EXPECT_EQ(first, second) << "case " << i;
  }
}

TEST(Generator, IndependentOfThreadEnvironment) {
  // The generator must not consult OPTO_THREADS (or any environment) —
  // flipping it between calls must not move a single byte.
  setenv("OPTO_THREADS", "1", /*overwrite=*/1);
  std::vector<std::string> single;
  for (std::uint64_t i = 0; i < 32; ++i)
    single.push_back(canonical_json(generate_case(kSeed, i)));
  setenv("OPTO_THREADS", "8", /*overwrite=*/1);
  for (std::uint64_t i = 0; i < 32; ++i)
    EXPECT_EQ(canonical_json(generate_case(kSeed, i)), single[i])
        << "case " << i;
  unsetenv("OPTO_THREADS");
}

TEST(Generator, StreamsAreDistinct) {
  // Different (seed, index) pairs should give different cases virtually
  // always; a collapse here means the stream derivation is broken.
  std::set<std::string> bytes;
  for (std::uint64_t i = 0; i < 64; ++i)
    bytes.insert(canonical_json(generate_case(kSeed, i)));
  bytes.insert(canonical_json(generate_case(kSeed + 1, 0)));
  EXPECT_GE(bytes.size(), 60u);
}

#ifdef OPTO_FUZZ_BIN
std::string run_dump(std::uint64_t seed, std::uint64_t index) {
  const std::string command = std::string(OPTO_FUZZ_BIN) + " --seed " +
                              std::to_string(seed) + " --dump " +
                              std::to_string(index) + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return {};
  std::string output;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = fread(buffer, 1, sizeof buffer, pipe)) > 0)
    output.append(buffer, got);
  pclose(pipe);
  return output;
}

TEST(Generator, SameSeedSameBytesAcrossProcesses) {
  // Two separate opto_fuzz processes and this test process must agree on
  // every byte of the same (seed, index) cases.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::string in_process = canonical_json(generate_case(kSeed, i));
    const std::string first = run_dump(kSeed, i);
    const std::string second = run_dump(kSeed, i);
    ASSERT_FALSE(first.empty()) << "opto_fuzz --dump produced nothing";
    EXPECT_EQ(first, in_process) << "case " << i;
    EXPECT_EQ(first, second) << "case " << i;
  }
}
#endif  // OPTO_FUZZ_BIN

TEST(Generator, MiniFuzzRunsClean) {
  // A small always-on differential sweep: every generated case must pass
  // determinism, invariant, and (when fault-free) reference checks. The
  // CI smoke job and nightly campaign scale this same loop up.
  std::uint64_t with_contention = 0, with_rwa_blocking = 0;
  for (std::uint64_t i = 0; i < 150; ++i) {
    const FuzzCase fuzz = generate_case(kSeed, i);
    const DiffReport report = diff_case(fuzz);
    EXPECT_TRUE(report.ok())
        << "case " << i << ":\n" << report.summary();
    if (report.metrics.contentions > 0) ++with_contention;
    if (report.rwa_blocked > 0) ++with_rwa_blocking;
  }
  // The generator would be useless if its cases never collided, and the
  // RWA stage would be a tautology if no strategy ever had to retry.
  EXPECT_GE(with_contention, 30u);
  EXPECT_GE(with_rwa_blocking, 20u);
}

}  // namespace
}  // namespace opto::testlib
