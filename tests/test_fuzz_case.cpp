// FuzzCase structural validation and the canonical JSON round-trip the
// replayable corpus depends on.
#include <gtest/gtest.h>

#include <string>

#include "opto/testlib/fuzz_case.hpp"
#include "opto/testlib/generator.hpp"

namespace opto::testlib {
namespace {

/// A small hand-built case every mutation below starts from.
FuzzCase base_case() {
  FuzzCase fuzz;
  fuzz.seed = 0xfeedface12345678ull;  // bigger than 2^53: exercises the
  fuzz.index = 41;                    // string-serialized seed path
  fuzz.node_count = 3;
  fuzz.edges = {{0, 1}, {1, 2}};
  fuzz.paths = {{0, 1, 2}, {2, 1}};
  fuzz.bandwidth = 2;
  fuzz.specs.resize(2);
  fuzz.specs[0].path = 0;
  fuzz.specs[0].length = 3;
  fuzz.specs[0].wavelength = 1;
  fuzz.specs[1].path = 1;
  fuzz.specs[1].start_time = 4;
  fuzz.specs[1].length = 1;
  return fuzz;
}

TEST(FuzzCase, BaseCaseIsWellFormedAndBuilds) {
  std::string error;
  ASSERT_TRUE(well_formed(base_case(), &error)) << error;
  const auto built = build_case(base_case());
  EXPECT_EQ(built->graph->node_count(), 3u);
  EXPECT_EQ(built->collection.size(), 2u);
  EXPECT_EQ(built->config.bandwidth, 2u);
  EXPECT_EQ(built->config.faults, nullptr);
}

TEST(FuzzCase, CanonicalJsonRoundTripsByteIdentically) {
  const FuzzCase fuzz = base_case();
  const std::string bytes = canonical_json(fuzz);
  EXPECT_EQ(bytes.back(), '\n');
  std::string error;
  const auto parsed = parse_case(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(canonical_json(*parsed), bytes);
  EXPECT_EQ(parsed->seed, fuzz.seed);
  EXPECT_EQ(parsed->index, fuzz.index);
  EXPECT_EQ(parsed->edges, fuzz.edges);
  EXPECT_EQ(parsed->paths, fuzz.paths);
  EXPECT_EQ(parsed->specs.size(), fuzz.specs.size());
  EXPECT_EQ(parsed->specs[1].start_time, 4u);
}

TEST(FuzzCase, FaultPlanRoundTrips) {
  FuzzCase fuzz = base_case();
  fuzz.has_faults = true;
  fuzz.faults.link_outage_rate = 0.25;
  fuzz.faults.corruption_rate = 0.05;
  fuzz.fault_seed = 0x8000000000000001ull;
  fuzz.fault_epoch = 3;
  const std::string bytes = canonical_json(fuzz);
  std::string error;
  const auto parsed = parse_case(bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->has_faults);
  EXPECT_DOUBLE_EQ(parsed->faults.link_outage_rate, 0.25);
  EXPECT_EQ(parsed->fault_seed, 0x8000000000000001ull);
  EXPECT_EQ(parsed->fault_epoch, 3u);
  EXPECT_EQ(canonical_json(*parsed), bytes);
  const auto built = build_case(*parsed);
  ASSERT_NE(built->config.faults, nullptr);
  EXPECT_TRUE(built->config.faults->enabled());
}

TEST(FuzzCase, GeneratedCasesRoundTrip) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const FuzzCase fuzz = generate_case(99, i);
    const std::string bytes = canonical_json(fuzz);
    std::string error;
    const auto parsed = parse_case(bytes, &error);
    ASSERT_TRUE(parsed.has_value()) << "case " << i << ": " << error;
    EXPECT_EQ(canonical_json(*parsed), bytes) << "case " << i;
  }
}

TEST(FuzzCase, RejectsOutOfRangeStructure) {
  std::string error;
  {
    FuzzCase fuzz = base_case();
    fuzz.edges.push_back({0, 0});  // self-loop
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
  {
    FuzzCase fuzz = base_case();
    fuzz.edges.push_back({1, 0});  // duplicate of (0,1)
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
  {
    FuzzCase fuzz = base_case();
    fuzz.edges.push_back({1, 7});  // endpoint out of range
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
  {
    FuzzCase fuzz = base_case();
    fuzz.paths.push_back({0, 2});  // non-adjacent hop
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
  {
    FuzzCase fuzz = base_case();
    fuzz.paths.push_back({0, 1, 0});  // revisits a node
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
}

TEST(FuzzCase, RejectsBadSpecs) {
  std::string error;
  {
    FuzzCase fuzz = base_case();
    fuzz.specs[0].length = 0;  // worms carry at least one flit
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
  {
    FuzzCase fuzz = base_case();
    fuzz.specs[0].wavelength = 2;  // >= bandwidth
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
  {
    FuzzCase fuzz = base_case();
    fuzz.specs[0].path = 9;  // dangling path id
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
  {
    // Equal ranks under the priority rule would trip the resolver's
    // distinct-priorities contract; well_formed must catch it first.
    FuzzCase fuzz = base_case();
    fuzz.rule = ContentionRule::Priority;
    fuzz.specs[0].priority = 5;
    fuzz.specs[1].priority = 5;
    EXPECT_FALSE(well_formed(fuzz, &error));
    fuzz.specs[1].priority = 6;
    EXPECT_TRUE(well_formed(fuzz, &error)) << error;
  }
}

TEST(FuzzCase, RejectsBadConverterAndFaultShapes) {
  std::string error;
  {
    FuzzCase fuzz = base_case();
    fuzz.conversion = ConversionMode::Sparse;
    fuzz.converters.assign(2, 1);  // must be node_count entries
    EXPECT_FALSE(well_formed(fuzz, &error));
    fuzz.converters.assign(3, 1);
    EXPECT_TRUE(well_formed(fuzz, &error)) << error;
  }
  {
    FuzzCase fuzz = base_case();
    fuzz.converters.assign(3, 1);  // converters without Sparse mode
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
  {
    FuzzCase fuzz = base_case();
    fuzz.has_faults = true;
    fuzz.faults.link_outage_rate = 1.5;  // rates live in [0,1]
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
  {
    FuzzCase fuzz = base_case();
    fuzz.has_faults = true;
    fuzz.faults.outage_period = 4;
    fuzz.faults.outage_duration = 9;  // must fit inside the period
    EXPECT_FALSE(well_formed(fuzz, &error));
  }
}

TEST(FuzzCase, ParseRejectsWrongSchemaAndGarbage) {
  std::string error;
  EXPECT_FALSE(parse_case("not json at all", &error).has_value());
  EXPECT_FALSE(parse_case("{}", &error).has_value());
  std::string bytes = canonical_json(base_case());
  const std::string tag = "opto.fuzz.case/1";
  bytes.replace(bytes.find(tag), tag.size(), "opto.fuzz.case/9");
  EXPECT_FALSE(parse_case(bytes, &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

}  // namespace
}  // namespace opto::testlib
