// Path selection strategies: dimension-order, canonical BFS, butterfly
// greedy, Valiant.
#include <gtest/gtest.h>

#include <memory>

#include "opto/graph/butterfly.hpp"
#include "opto/graph/hypercube.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/bfs_shortest.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/dimension_order.hpp"
#include "opto/paths/shortcut_free.hpp"
#include "opto/paths/valiant.hpp"

namespace opto {
namespace {

TEST(DimensionOrder, RoutesRowMajor) {
  const auto topo = make_mesh({3, 3});
  // (0,0) -> (2,1): dimension 0 first (down two), then dimension 1.
  const auto route = dimension_order_route(topo, 0, 7);
  EXPECT_EQ(route, (std::vector<NodeId>{0, 3, 6, 7}));
}

TEST(DimensionOrder, SelfRoute) {
  const auto topo = make_mesh({3, 3});
  EXPECT_EQ(dimension_order_route(topo, 4, 4), (std::vector<NodeId>{4}));
}

TEST(DimensionOrder, LengthIsManhattanDistance) {
  const auto topo = make_mesh({5, 5, 5});
  for (NodeId s : {0u, 31u, 124u})
    for (NodeId t : {7u, 62u, 93u}) {
      const auto sc = topo.coords_of(s);
      const auto tc = topo.coords_of(t);
      std::uint32_t manhattan = 0;
      for (std::size_t d = 0; d < 3; ++d)
        manhattan += sc[d] > tc[d] ? sc[d] - tc[d] : tc[d] - sc[d];
      EXPECT_EQ(dimension_order_path(topo, s, t).length(), manhattan);
    }
}

TEST(DimensionOrder, TorusTakesShorterWrap) {
  const auto topo = make_torus({6});
  // 0 -> 5 is one hop across the wrap edge.
  EXPECT_EQ(dimension_order_route(topo, 0, 5), (std::vector<NodeId>{0, 5}));
  // 0 -> 2 goes forward.
  EXPECT_EQ(dimension_order_route(topo, 0, 2),
            (std::vector<NodeId>{0, 1, 2}));
  // Tie (distance 3 both ways) resolves to the +1 direction.
  EXPECT_EQ(dimension_order_route(topo, 0, 3),
            (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(DimensionOrder, MeshSystemShortcutFree) {
  const auto topo = std::make_shared<MeshTopology>(make_mesh({3, 3}));
  std::shared_ptr<const Graph> graph(topo, &topo->graph);
  PathCollection collection(graph);
  for (NodeId s = 0; s < 9; ++s)
    collection.add(dimension_order_path(*topo, s, (s * 5 + 2) % 9));
  EXPECT_TRUE(is_shortcut_free(collection));
}

TEST(BfsShortest, PathHasBfsDistance) {
  const auto cube = std::make_shared<Graph>(make_hypercube(4));
  const auto path = bfs_shortest_path(*cube, 0b0000, 0b1011);
  EXPECT_EQ(path.length(), 3u);  // Hamming distance
}

TEST(BfsShortest, CollectionSharesTreesPerSource) {
  const auto cube = std::make_shared<Graph>(make_hypercube(3));
  std::vector<std::pair<NodeId, NodeId>> requests;
  for (NodeId t = 0; t < 8; ++t) requests.emplace_back(0, t);
  const auto collection = bfs_collection(cube, requests);
  EXPECT_EQ(collection.size(), 8u);
  // Same-source canonical paths form a tree: no meet/separate/meet, hence
  // short-cut free.
  EXPECT_TRUE(is_shortcut_free(collection));
}

TEST(BfsShortest, Deterministic) {
  const auto cube = std::make_shared<Graph>(make_hypercube(4));
  const auto a = bfs_shortest_path(*cube, 3, 12);
  const auto b = bfs_shortest_path(*cube, 3, 12);
  EXPECT_EQ(a, b);
}

TEST(ButterflyPaths, UniqueGreedyRoute) {
  const auto topo = make_butterfly(3);
  const auto path = butterfly_io_path(topo, 0b101, 0b011);
  EXPECT_EQ(path.length(), 3u);
  const auto nodes = path.nodes(topo.graph);
  EXPECT_EQ(nodes.front(), topo.input(0b101));
  EXPECT_EQ(nodes.back(), topo.output(0b011));
  // Row after level ℓ has bits 0..ℓ-1 corrected.
  EXPECT_EQ(topo.row_of(nodes[1]), 0b101u);                // bit0: 1->1
  EXPECT_EQ(topo.row_of(nodes[2]), 0b111u);                // bit1: 0->1
  EXPECT_EQ(topo.row_of(nodes[3]), 0b011u);                // bit2: 1->0
}

TEST(ButterflyPaths, StraightWhenRowsEqual) {
  const auto topo = make_butterfly(4);
  const auto path = butterfly_io_path(topo, 5, 5);
  for (const NodeId node : path.nodes(topo.graph))
    EXPECT_EQ(topo.row_of(node), 5u);
}

TEST(ButterflyPaths, CollectionIsShortcutFree) {
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(3));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
  for (std::uint32_t r = 0; r < 8; ++r) requests.emplace_back(r, 7 - r);
  const auto collection = butterfly_io_collection(topo, requests);
  EXPECT_TRUE(is_shortcut_free(collection));
  EXPECT_EQ(collection.dilation(), 3u);
}

TEST(Valiant, RouteEndsAtDestination) {
  const auto topo = make_mesh({4, 4});
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const auto path = valiant_mesh_path(topo, 0, 15, rng);
    EXPECT_EQ(path.source(), 0u);
    EXPECT_EQ(path.destination(), 15u);
    EXPECT_GE(path.length(), 6u);  // at least the Manhattan distance
  }
}

TEST(Valiant, SelfRouteStaysPut) {
  const auto topo = make_mesh({3, 3});
  Rng rng(5);
  const auto path = valiant_mesh_path(topo, 4, 4, rng);
  EXPECT_EQ(path.source(), 4u);
  EXPECT_EQ(path.destination(), 4u);
}

}  // namespace
}  // namespace opto
