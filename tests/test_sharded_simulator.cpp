// Sharded pass mode (DESIGN.md §7): the component-sharded engine must be
// byte-identical to the sequential engine on every model-level output —
// rendered metrics JSON and the canonical trace — and invariant across
// thread-pool widths, on leveled, short-cut-free, faulty, and
// wavelength-converting workloads; plus the protocol-level contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "opto/core/trial_and_failure.hpp"
#include "opto/par/thread_pool.hpp"
#include "opto/paths/leveled.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/shortcut_free.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/simulator.hpp"
#include "opto/util/json.hpp"

namespace opto {
namespace {

/// The model-level metrics as one JSON document — the fields DESIGN.md §7
/// guarantees are mode-invariant (engine-local instrumentation counters
/// are deliberately absent).
std::string model_metrics_json(const PassMetrics& m) {
  std::ostringstream os;
  {
    JsonWriter json(os);
    json.begin_object();
    json.key("launched"), json.value(m.launched);
    json.key("delivered"), json.value(m.delivered);
    json.key("killed"), json.value(m.killed);
    json.key("truncated"), json.value(m.truncated);
    json.key("truncated_arrivals"), json.value(m.truncated_arrivals);
    json.key("contentions"), json.value(m.contentions);
    json.key("retunes"), json.value(m.retunes);
    json.key("fault_kills"), json.value(m.fault_kills);
    json.key("corrupted"), json.value(m.corrupted);
    json.key("corrupted_arrivals"), json.value(m.corrupted_arrivals);
    json.key("makespan"), json.value(static_cast<std::int64_t>(m.makespan));
    json.key("worm_steps"), json.value(m.worm_steps);
    json.key("link_busy_steps"), json.value(m.link_busy_steps);
    json.end_object();
  }
  return os.str();
}

std::string canonical_trace_text(const Trace& trace) {
  std::string text;
  for (const TraceEvent& event : canonical_events(trace)) {
    text += Trace::describe(event);
    text += '\n';
  }
  return text;
}

std::vector<LaunchSpec> make_specs(const PathCollection& collection,
                                   std::uint16_t bandwidth,
                                   std::uint32_t length, std::uint64_t seed) {
  Rng rng(seed);
  const auto ranks = rng.permutation(collection.size());
  std::vector<LaunchSpec> specs(collection.size());
  for (PathId id = 0; id < collection.size(); ++id) {
    specs[id].path = id;
    specs[id].start_time = static_cast<SimTime>(rng.next_below(6));
    specs[id].wavelength = static_cast<Wavelength>(rng.next_below(bandwidth));
    specs[id].priority = ranks[id];
    specs[id].length = length;
  }
  return specs;
}

/// Runs sequential-vs-sharded on `collection` and checks the §7 contract:
/// identical worm outcomes, metrics JSON, and canonical trace in every
/// mode; the full PassResult (instrumentation included) invariant across
/// pool widths {1, 2, 8}.
void expect_sharding_invariant(const PathCollection& collection,
                               SimConfig config,
                               std::span<const LaunchSpec> specs) {
  config.record_trace = true;
  config.pool = nullptr;

  SimConfig sequential_config = config;
  sequential_config.sharding = PassSharding::Off;
  Simulator sequential(collection, sequential_config);
  const PassResult base = sequential.run(specs);
  const std::string base_metrics = model_metrics_json(base.metrics);
  const std::string base_trace = canonical_trace_text(base.trace);

  std::vector<PassMetrics> sharded_instrumentation;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    SimConfig sharded_config = config;
    sharded_config.sharding = PassSharding::On;
    sharded_config.pool = &pool;
    Simulator sharded(collection, sharded_config);
    const PassResult result = sharded.run(specs);

    EXPECT_EQ(model_metrics_json(result.metrics), base_metrics)
        << "metrics JSON diverged at " << workers << " workers";
    EXPECT_EQ(canonical_trace_text(result.trace), base_trace)
        << "canonical trace diverged at " << workers << " workers";
    ASSERT_EQ(result.worms.size(), base.worms.size());
    for (WormId id = 0; id < base.worms.size(); ++id) {
      EXPECT_EQ(result.worms[id].status, base.worms[id].status);
      EXPECT_EQ(result.worms[id].truncated, base.worms[id].truncated);
      EXPECT_EQ(result.worms[id].corrupted, base.worms[id].corrupted);
      EXPECT_EQ(result.worms[id].fault_loss, base.worms[id].fault_loss);
      EXPECT_EQ(result.worms[id].finish_time, base.worms[id].finish_time);
      EXPECT_EQ(result.worms[id].blocked_at_link,
                base.worms[id].blocked_at_link);
      EXPECT_EQ(result.worms[id].blocked_by, base.worms[id].blocked_by);
    }
    sharded_instrumentation.push_back(result.metrics);
  }
  // Instrumentation counters are engine-local (they differ from the
  // sequential engine's) but must still be deterministic in the sharded
  // mode itself: bucketing is pool-width independent.
  for (std::size_t i = 1; i < sharded_instrumentation.size(); ++i) {
    EXPECT_EQ(sharded_instrumentation[i].steps,
              sharded_instrumentation[0].steps);
    EXPECT_EQ(sharded_instrumentation[i].registry_probes,
              sharded_instrumentation[0].registry_probes);
    EXPECT_EQ(sharded_instrumentation[i].registry_hits,
              sharded_instrumentation[0].registry_hits);
    EXPECT_EQ(sharded_instrumentation[i].peak_inflight,
              sharded_instrumentation[0].peak_inflight);
  }
}

TEST(ShardedSimulator, LeveledStaircasesAcrossPoolWidths) {
  const PathCollection collection = make_staircase_collection(8, 4, 12, 5);
  ASSERT_TRUE(is_leveled(collection));
  ASSERT_GE(collection.components().count, 8u);
  SimConfig config;
  config.bandwidth = 2;
  const auto specs = make_specs(collection, config.bandwidth, 5, 11);
  expect_sharding_invariant(collection, config, specs);
}

TEST(ShardedSimulator, ShortcutFreeBundlesPriorityRule) {
  const PathCollection collection = make_bundle_collection(8, 5, 6);
  ASSERT_TRUE(is_shortcut_free(collection));
  ASSERT_GE(collection.components().count, 8u);
  SimConfig config;
  config.rule = ContentionRule::Priority;
  config.tie = TiePolicy::FirstWins;
  config.bandwidth = 2;
  const auto specs = make_specs(collection, config.bandwidth, 4, 23);
  expect_sharding_invariant(collection, config, specs);
}

TEST(ShardedSimulator, FaultPlanKeyedByGlobalWormIds) {
  // Fault streams hash *global* worm ids; a shard querying with local ids
  // would silently reshuffle corruption across components.
  const PathCollection collection = make_staircase_collection(8, 4, 12, 5);
  FaultConfig fault_config;
  fault_config.link_outage_rate = 0.15;
  fault_config.stuck_wavelength_rate = 0.1;
  fault_config.corruption_rate = 0.2;
  fault_config.outage_period = 8;
  fault_config.outage_duration = 3;
  const FaultPlan plan(fault_config, /*base_seed=*/77);
  SimConfig config;
  config.bandwidth = 2;
  config.faults = &plan;
  const auto specs = make_specs(collection, config.bandwidth, 5, 31);
  expect_sharding_invariant(collection, config, specs);
}

TEST(ShardedSimulator, FullConversionWorkload) {
  const PathCollection collection = make_bundle_collection(9, 4, 5);
  SimConfig config;
  config.bandwidth = 3;
  config.conversion = ConversionMode::Full;
  const auto specs = make_specs(collection, config.bandwidth, 3, 41);
  expect_sharding_invariant(collection, config, specs);
}

TEST(ShardedSimulator, SingleComponentFallsBackExactly) {
  // One bundle = one component: run_sharded must fall back to the
  // sequential pass, making even the instrumentation counters identical.
  const PathCollection collection = make_bundle_collection(1, 6, 7);
  ASSERT_EQ(collection.components().count, 1u);
  SimConfig config;
  config.record_trace = true;
  config.sharding = PassSharding::Off;
  Simulator sequential(collection, config);
  const auto specs = make_specs(collection, config.bandwidth, 4, 53);
  const PassResult base = sequential.run(specs);

  ThreadPool pool(4);
  config.sharding = PassSharding::On;
  config.pool = &pool;
  Simulator sharded(collection, config);
  const PassResult result = sharded.run(specs);
  EXPECT_EQ(model_metrics_json(result.metrics),
            model_metrics_json(base.metrics));
  EXPECT_EQ(result.metrics.steps, base.metrics.steps);
  EXPECT_EQ(result.metrics.registry_probes, base.metrics.registry_probes);
  EXPECT_EQ(result.metrics.registry_hits, base.metrics.registry_hits);
  EXPECT_EQ(result.metrics.peak_inflight, base.metrics.peak_inflight);
  EXPECT_EQ(canonical_trace_text(result.trace),
            canonical_trace_text(base.trace));
}

TEST(ShardedSimulator, ProtocolResultsInvariant) {
  // The protocol only consumes model-level pass output, so a full
  // Trial-and-Failure run must be identical with sharding forced on.
  const PathCollection collection = make_staircase_collection(8, 4, 12, 5);
  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 5;
  config.max_rounds = 64;
  config.faults.link_outage_rate = 0.1;
  config.faults.outage_period = 8;
  config.faults.outage_duration = 2;

  config.sharding = PassSharding::Off;
  FixedSchedule off_schedule(8);
  TrialAndFailure off(collection, config, off_schedule);
  const ProtocolResult base = off.run(/*seed=*/9);

  config.sharding = PassSharding::On;
  FixedSchedule on_schedule(8);
  TrialAndFailure on(collection, config, on_schedule);
  const ProtocolResult result = on.run(/*seed=*/9);

  EXPECT_EQ(result.success, base.success);
  EXPECT_EQ(result.rounds_used, base.rounds_used);
  EXPECT_EQ(result.total_charged_time, base.total_charged_time);
  EXPECT_EQ(result.total_actual_time, base.total_actual_time);
  EXPECT_EQ(result.duplicate_deliveries, base.duplicate_deliveries);
  EXPECT_EQ(result.completion_round, base.completion_round);
  ASSERT_EQ(result.rounds.size(), base.rounds.size());
  for (std::size_t r = 0; r < base.rounds.size(); ++r) {
    EXPECT_EQ(result.rounds[r].delta, base.rounds[r].delta);
    EXPECT_EQ(result.rounds[r].delivered, base.rounds[r].delivered);
    EXPECT_EQ(result.rounds[r].acknowledged, base.rounds[r].acknowledged);
    EXPECT_EQ(result.rounds[r].fault_losses, base.rounds[r].fault_losses);
    EXPECT_EQ(result.rounds[r].contention_losses,
              base.rounds[r].contention_losses);
    EXPECT_EQ(model_metrics_json(result.rounds[r].forward),
              model_metrics_json(base.rounds[r].forward));
  }
}

}  // namespace
}  // namespace opto
