// Δ_t schedules: the paper's geometric-halving behaviour and its floor.
#include <gtest/gtest.h>

#include "opto/core/schedule.hpp"

namespace opto {
namespace {

ProblemShape shape(std::uint32_t n, std::uint32_t D, std::uint32_t C,
                   std::uint32_t L, std::uint16_t B) {
  ProblemShape s;
  s.size = n;
  s.dilation = D;
  s.path_congestion = C;
  s.worm_length = L;
  s.bandwidth = B;
  return s;
}

TEST(Schedule, PaperScheduleMonotoneNonIncreasing) {
  PaperSchedule schedule(shape(4096, 20, 512, 8, 2));
  SimTime prev = schedule.delta(1);
  for (std::uint32_t t = 2; t <= 20; ++t) {
    const SimTime cur = schedule.delta(t);
    EXPECT_LE(cur, prev) << "round " << t;
    prev = cur;
  }
}

TEST(Schedule, PaperScheduleHalvesEarlyRounds) {
  // With C̃ far above the log floor, consecutive ranges should roughly
  // halve (the D+L additive keeps it from being exact).
  const auto s = shape(1u << 20, 10, 1u << 16, 4, 1);
  PaperSchedule schedule(s);
  const double range1 =
      static_cast<double>(schedule.delta(1)) - (s.dilation + s.worm_length);
  const double range2 =
      static_cast<double>(schedule.delta(2)) - (s.dilation + s.worm_length);
  EXPECT_NEAR(range2 / range1, 0.5, 0.1);
}

TEST(Schedule, PaperScheduleFloorsAtLogTerm) {
  PaperSchedule schedule(shape(1024, 10, 64, 4, 1));
  // After many rounds the range must stabilize (log-floor + D + L).
  const SimTime late1 = schedule.delta(40);
  const SimTime late2 = schedule.delta(60);
  EXPECT_EQ(late1, late2);
  EXPECT_GE(late1, 10 + 4);  // at least D + L
}

TEST(Schedule, PaperScheduleScalesInverselyWithBandwidth) {
  const auto s1 = shape(4096, 0, 4096, 8, 1);
  auto s4 = s1;
  s4.bandwidth = 4;
  PaperSchedule one(s1), four(s4);
  // Range term ∝ 1/B (D = 0 isolates it).
  EXPECT_NEAR(static_cast<double>(one.delta(1) - 8) /
                  static_cast<double>(four.delta(1) - 8),
              4.0, 0.2);
}

TEST(Schedule, PaperScheduleAlwaysAtLeastOne) {
  PaperSchedule schedule(shape(2, 0, 0, 1, 16));
  EXPECT_GE(schedule.delta(1), 1);
  EXPECT_GE(schedule.delta(100), 1);
}

TEST(Schedule, FixedScheduleConstant) {
  FixedSchedule schedule(42);
  EXPECT_EQ(schedule.delta(1), 42);
  EXPECT_EQ(schedule.delta(99), 42);
  EXPECT_EQ(schedule.describe(), "fixed(42)");
}

TEST(Schedule, NoDelayScheduleIsOne) {
  NoDelaySchedule schedule;
  EXPECT_EQ(schedule.delta(1), 1);
  EXPECT_EQ(schedule.delta(7), 1);
}

TEST(Schedule, AdaptiveGrowsOnFailure) {
  AdaptiveSchedule schedule(8);
  EXPECT_EQ(schedule.delta(1), 8);
  schedule.observe(100, 10);  // 10% success: too tight
  EXPECT_EQ(schedule.delta(2), 16);
  schedule.observe(100, 0);
  EXPECT_EQ(schedule.delta(3), 32);
}

TEST(Schedule, AdaptiveShrinksOnEasyRounds) {
  AdaptiveSchedule schedule(64);
  schedule.observe(100, 95);  // 95% success: range can shrink
  EXPECT_EQ(schedule.delta(2), 32);
}

TEST(Schedule, AdaptiveHoldsInTheMiddleBand) {
  AdaptiveSchedule schedule(40);
  schedule.observe(100, 70);  // between the thresholds
  EXPECT_EQ(schedule.delta(2), 40);
}

TEST(Schedule, AdaptiveRespectsClamps) {
  AdaptiveSchedule::Tuning tuning;
  tuning.min_delta = 4;
  tuning.max_delta = 32;
  AdaptiveSchedule schedule(8, tuning);
  for (int i = 0; i < 10; ++i) schedule.observe(10, 0);
  EXPECT_EQ(schedule.current(), 32);
  for (int i = 0; i < 10; ++i) schedule.observe(10, 10);
  EXPECT_EQ(schedule.current(), 4);
}

TEST(Schedule, AdaptiveResetRestoresInitial) {
  AdaptiveSchedule schedule(16);
  schedule.observe(10, 0);
  EXPECT_NE(schedule.current(), 16);
  schedule.reset();
  EXPECT_EQ(schedule.current(), 16);
}

TEST(Schedule, AdaptiveIgnoresEmptyRounds) {
  AdaptiveSchedule schedule(16);
  schedule.observe(0, 0);
  EXPECT_EQ(schedule.current(), 16);
}

TEST(Schedule, NonAdaptiveSchedulesIgnoreFeedback) {
  FixedSchedule fixed(10);
  fixed.observe(100, 0);
  EXPECT_EQ(fixed.delta(5), 10);
  PaperSchedule paper(shape(64, 4, 8, 2, 1));
  const SimTime before = paper.delta(3);
  paper.observe(100, 0);
  EXPECT_EQ(paper.delta(3), before);
}

TEST(Schedule, DescribeMentionsConstants) {
  PaperSchedule schedule(shape(16, 2, 4, 2, 1),
                         PaperSchedule::Constants{8.0, 3.0});
  EXPECT_NE(schedule.describe().find("8"), std::string::npos);
}

}  // namespace
}  // namespace opto
