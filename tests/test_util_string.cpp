#include <gtest/gtest.h>

#include "opto/util/string_util.hpp"

namespace opto {
namespace {

TEST(StringUtil, Split) {
  EXPECT_EQ(split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("4.5").has_value());
  EXPECT_FALSE(parse_int("x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12abc").has_value());
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double(" -1e3 "), -1000.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

}  // namespace
}  // namespace opto
