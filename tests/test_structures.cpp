// The lower-bound constructions (Figures 5 and 6): exact sharing geometry.
#include <gtest/gtest.h>

#include "opto/paths/leveled.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/shortcut_free.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {
namespace {

TEST(Structures, StaircaseStep) {
  // d = ⌊(L−1)/2⌋ + 1.
  EXPECT_EQ(StructureBuilder::staircase_step(1), 1u);
  EXPECT_EQ(StructureBuilder::staircase_step(2), 1u);
  EXPECT_EQ(StructureBuilder::staircase_step(3), 2u);
  EXPECT_EQ(StructureBuilder::staircase_step(4), 2u);
  EXPECT_EQ(StructureBuilder::staircase_step(7), 4u);
}

TEST(Structures, StaircaseSharing) {
  const std::uint32_t L = 4;  // d = 2
  const auto collection = make_staircase_collection(1, 3, 8, L);
  ASSERT_EQ(collection.size(), 3u);
  const auto per_path = collection.path_congestions();
  // Interior path shares an edge with both neighbors.
  EXPECT_EQ(per_path[0], 1u);
  EXPECT_EQ(per_path[1], 2u);
  EXPECT_EQ(per_path[2], 1u);

  // Path i's link at position d equals path i+1's link at position 0.
  const std::uint32_t d = StructureBuilder::staircase_step(L);
  EXPECT_EQ(collection.path(0).link(d), collection.path(1).link(0));
  EXPECT_EQ(collection.path(1).link(d), collection.path(2).link(0));
  // ... and only that one link is shared.
  std::uint32_t shared = 0;
  for (EdgeId a : collection.path(0).links())
    for (EdgeId b : collection.path(1).links())
      if (a == b) ++shared;
  EXPECT_EQ(shared, 1u);
}

TEST(Structures, StaircaseLengthsAndNodes) {
  const auto collection = make_staircase_collection(1, 4, 10, 6);  // d = 3
  for (const Path& p : collection.paths()) EXPECT_EQ(p.length(), 10u);
  // Node count: 4·11 positions minus 2 shared per adjacent pair.
  EXPECT_EQ(collection.graph().node_count(), 4u * 11u - 3u * 2u);
}

TEST(Structures, StaircaseSmallL) {
  // L = 2 gives d = 1: each interior node participates in two sharings.
  const auto collection = make_staircase_collection(1, 4, 6, 2);
  EXPECT_TRUE(is_leveled(collection));
  EXPECT_TRUE(is_shortcut_free(collection));
  EXPECT_EQ(collection.path(0).link(1), collection.path(1).link(0));
}

TEST(Structures, StaircaseBlockingChain) {
  // Lemma 2.8's mechanism: with equal delays and one wavelength, worm i+1
  // (launched d levels behind) occupies the shared edge when worm i's head
  // arrives, so every worm but the last dies.
  const std::uint32_t L = 4;
  const std::uint32_t k = 5;
  const auto collection = make_staircase_collection(1, k, 12, L);
  Simulator sim(collection, {});
  std::vector<LaunchSpec> specs;
  for (PathId id = 0; id < k; ++id) {
    LaunchSpec s;
    s.path = id;
    s.start_time = 0;
    s.wavelength = 0;
    s.length = L;
    specs.push_back(s);
  }
  const auto result = sim.run(specs);
  for (PathId id = 0; id + 1 < k; ++id) {
    EXPECT_EQ(result.worms[id].status, WormStatus::Killed) << "worm " << id;
    EXPECT_EQ(result.worms[id].blocked_by, id + 1);
  }
  EXPECT_TRUE(result.worms[k - 1].delivered_intact());
}

TEST(Structures, BundleIsIdenticalPaths) {
  const auto collection = make_bundle_collection(2, 5, 7);
  ASSERT_EQ(collection.size(), 10u);
  EXPECT_EQ(collection.path(0), collection.path(4));
  EXPECT_NE(collection.path(0), collection.path(5));  // second structure
  EXPECT_EQ(collection.path_congestion(), 4u);
  EXPECT_EQ(collection.edge_congestion(), 5u);
  EXPECT_EQ(collection.dilation(), 7u);
  EXPECT_TRUE(is_leveled(collection));
}

TEST(Structures, TriangleGeometry) {
  const std::uint32_t L = 6;  // m = 3
  const auto collection = make_triangle_collection(1, 9, L);
  ASSERT_EQ(collection.size(), 3u);
  const std::uint32_t m = StructureBuilder::triangle_offset(L);
  for (std::uint32_t j = 0; j < 3; ++j) {
    EXPECT_EQ(collection.path(j).link(m),
              collection.path((j + 1) % 3).link(0))
        << "cycle edge " << j;
    EXPECT_EQ(collection.path(j).length(), 9u);
  }
  EXPECT_EQ(collection.path_congestion(), 2u);
}

TEST(Structures, TriangleDeadlockAtEqualDelays) {
  // §3.2's blocking event: equal delays + one wavelength kill all three
  // under serve-first.
  for (std::uint32_t L : {2u, 3u, 4u, 7u}) {
    const auto collection = make_triangle_collection(
        1, StructureBuilder::triangle_offset(L) + 4, L);
    Simulator sim(collection, {});
    std::vector<LaunchSpec> specs;
    for (PathId id = 0; id < 3; ++id) {
      LaunchSpec s;
      s.path = id;
      s.start_time = 0;
      s.wavelength = 0;
      s.length = L;
      specs.push_back(s);
    }
    const auto result = sim.run(specs);
    EXPECT_EQ(result.metrics.killed, 3u) << "L=" << L;
  }
}

TEST(Structures, TriangleDelaySpreadBreaksDeadlock) {
  // With delays farther apart than the blocking window, worms miss each
  // other and all deliver.
  const std::uint32_t L = 4;
  const auto collection = make_triangle_collection(1, 10, L);
  Simulator sim(collection, {});
  std::vector<LaunchSpec> specs;
  for (PathId id = 0; id < 3; ++id) {
    LaunchSpec s;
    s.path = id;
    s.start_time = static_cast<SimTime>(id) * 3 * L;
    s.wavelength = 0;
    s.length = L;
    specs.push_back(s);
  }
  const auto result = sim.run(specs);
  EXPECT_EQ(result.metrics.delivered, 3u);
}

TEST(Structures, MixedBuilderCombinesStructures) {
  StructureBuilder builder;
  builder.add_staircase(3, 8, 4);
  builder.add_bundle(5, 6);
  builder.add_triangle(8, 4);
  EXPECT_EQ(builder.path_count(), 3u + 5u + 3u);
  const auto collection = std::move(builder).build();
  EXPECT_EQ(collection.size(), 11u);
  EXPECT_EQ(collection.dilation(), 8u);
  // Structures are disjoint: bundle paths share nothing with staircases.
  EXPECT_TRUE(is_shortcut_free(collection));
}

TEST(StructuresDeath, TriangleNeedsL2) {
  EXPECT_DEATH(make_triangle_collection(1, 8, 1), "L >= 2");
}

}  // namespace
}  // namespace opto
