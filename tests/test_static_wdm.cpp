// Static-WDM baseline: collision-free batched routing.
#include <gtest/gtest.h>

#include <memory>

#include "opto/core/static_wdm.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"

namespace opto {
namespace {

TEST(StaticWdm, BundleBatches) {
  const auto collection = make_bundle_collection(1, 8, 10);
  const auto result = run_static_wdm(collection, /*bandwidth=*/2,
                                     /*worm_length=*/4);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.colors, 8u);
  EXPECT_EQ(result.batches, 4u);
  // Each batch: 2 worms, disjoint wavelengths, makespan = D + L - 2 = 12.
  EXPECT_EQ(result.total_time, 4 * (12 + 1));
}

TEST(StaticWdm, SingleBatchWhenBandwidthCovers) {
  const auto collection = make_bundle_collection(1, 4, 6);
  const auto result = run_static_wdm(collection, /*bandwidth=*/8,
                                     /*worm_length=*/2);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.batches, 1u);
}

TEST(StaticWdm, MeshRandomFunction) {
  auto topo = std::make_shared<MeshTopology>(make_mesh({6, 6}));
  Rng rng(5);
  const auto collection = mesh_random_function(topo, rng);
  const auto result = run_static_wdm(collection, 2, 4);
  EXPECT_TRUE(result.success);
  EXPECT_GE(result.colors, collection.edge_congestion());
  EXPECT_LE(result.colors, collection.path_congestion() + 1);
}

TEST(StaticWdm, TrianglesAreTrivialForStaticAssignment) {
  // The serve-first livelock case is a non-event for RWA: 3 colors, done.
  const auto collection = make_triangle_collection(10, 10, 4);
  const auto result = run_static_wdm(collection, 3, 4);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.batches, 1u);
}

TEST(StaticWdm, WormStepsAccountAllLinks) {
  const auto collection = make_bundle_collection(2, 3, 5);
  const auto result = run_static_wdm(collection, 1, 2);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.worm_steps, 6u * 5u);  // every path fully traversed
}

}  // namespace
}  // namespace opto
