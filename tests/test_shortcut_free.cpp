// Short-cut freeness (§1.1): equal-length common stretches.
#include <gtest/gtest.h>

#include <memory>

#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/shortcut_free.hpp"

namespace opto {
namespace {

std::shared_ptr<Graph> chain(NodeId n) {
  auto graph = std::make_shared<Graph>(n);
  for (NodeId u = 0; u + 1 < n; ++u) graph->add_edge(u, u + 1);
  return graph;
}

TEST(ShortcutFree, DisjointPathsAreFree) {
  auto graph = std::make_shared<Graph>(6);
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(3, 4);
  graph->add_edge(4, 5);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{3, 4, 5}));
  EXPECT_TRUE(is_shortcut_free(collection));
}

TEST(ShortcutFree, SharedSegmentIsFree) {
  const auto graph = chain(5);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_TRUE(is_shortcut_free(collection));
}

TEST(ShortcutFree, DetectsShortcut) {
  // p goes 0-1-2-3 the long way, q provides the direct edge 0-3: q's
  // subpath 0->3 (length 1) shortcuts p's (length 3).
  auto graph = std::make_shared<Graph>(5);
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(2, 3);
  graph->add_edge(0, 3);
  graph->add_edge(3, 4);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 3, 4}));

  const auto violation = find_shortcut(collection);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->shortcut_path, 0u);
  EXPECT_EQ(violation->via_path, 1u);
  EXPECT_EQ(violation->from, 0u);
  EXPECT_EQ(violation->to, 3u);
  EXPECT_EQ(violation->long_length, 3u);
  EXPECT_EQ(violation->short_length, 1u);
}

TEST(ShortcutFree, ReversedDirectionDoesNotShortcut) {
  // q visits the common nodes in the opposite order; directed subpaths
  // cannot shortcut each other.
  auto graph = std::make_shared<Graph>(5);
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(2, 3);
  graph->add_edge(3, 0);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{3, 0}));
  EXPECT_TRUE(is_shortcut_free(collection));
}

TEST(ShortcutFree, MeetSeparateMeetEqualLengthsStillFree) {
  // Two equal-length parallel detours: meet-separate-meet holds but no
  // shortcut exists (the paper's condition is only sufficient).
  auto graph = std::make_shared<Graph>(6);
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);  // branch a
  graph->add_edge(1, 3);  // branch b
  graph->add_edge(2, 4);
  graph->add_edge(3, 4);
  graph->add_edge(4, 5);
  PathCollection collection(graph);
  collection.add(
      Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 4, 5}));
  collection.add(
      Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 3, 4, 5}));
  EXPECT_TRUE(is_shortcut_free(collection));
  EXPECT_TRUE(meet_separate_meet(*graph, collection.path(0),
                                 collection.path(1)));
}

TEST(ShortcutFree, MeetOnceIsNotMeetSeparateMeet) {
  const auto graph = chain(5);
  const auto p = Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3});
  const auto q = Path::from_nodes(*graph, std::vector<NodeId>{1, 2, 3, 4});
  EXPECT_FALSE(meet_separate_meet(*graph, p, q));
}

TEST(ShortcutFree, StaircaseIsShortcutFree) {
  EXPECT_TRUE(is_shortcut_free(make_staircase_collection(2, 5, 12, 6)));
}

TEST(ShortcutFree, BundleIsShortcutFree) {
  EXPECT_TRUE(is_shortcut_free(make_bundle_collection(2, 6, 8)));
}

TEST(ShortcutFree, TriangleIsShortcutFree) {
  EXPECT_TRUE(is_shortcut_free(make_triangle_collection(2, 9, 4)));
  EXPECT_TRUE(is_shortcut_free(make_triangle_collection(1, 6, 2)));
}

}  // namespace
}  // namespace opto
