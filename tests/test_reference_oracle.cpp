// Direct unit tests of the reference engine on tiny hand-computed
// scenarios. Every expectation here was derived on paper from the model
// (§2: worms never stall; link i is held over [s+i, s+i+ℓ−1]) — not by
// running either engine — and each scenario is executed through BOTH the
// reference and the production simulator, so these cases anchor the
// differential fuzzer's oracle to the model itself.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "opto/graph/graph.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/sim/reference.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {
namespace {

struct BothResults {
  PassResult fast;
  PassResult reference;
};

BothResults run_both(const PathCollection& collection,
                     const SimConfig& config,
                     const std::vector<LaunchSpec>& specs) {
  Simulator simulator(collection, config);
  BothResults results;
  results.fast = simulator.run(specs);
  results.reference = reference_run(collection, config, specs);
  EXPECT_EQ(results.fast.worms.size(), results.reference.worms.size());
  for (std::size_t i = 0; i < results.fast.worms.size(); ++i) {
    EXPECT_EQ(results.fast.worms[i].status, results.reference.worms[i].status)
        << "worm " << i;
    EXPECT_EQ(results.fast.worms[i].finish_time,
              results.reference.worms[i].finish_time)
        << "worm " << i;
    EXPECT_EQ(results.fast.worms[i].truncated,
              results.reference.worms[i].truncated)
        << "worm " << i;
  }
  EXPECT_EQ(results.fast.metrics.delivered,
            results.reference.metrics.delivered);
  EXPECT_EQ(results.fast.metrics.killed, results.reference.metrics.killed);
  EXPECT_EQ(results.fast.metrics.truncated,
            results.reference.metrics.truncated);
  EXPECT_EQ(results.fast.metrics.truncated_arrivals,
            results.reference.metrics.truncated_arrivals);
  EXPECT_EQ(results.fast.metrics.retunes, results.reference.metrics.retunes);
  EXPECT_EQ(results.fast.metrics.makespan,
            results.reference.metrics.makespan);
  return results;
}

/// Star around node 2: arms to 0, 1, and 3. The shared outgoing fiber
/// 2→3 is where everything collides.
std::shared_ptr<const Graph> star_graph() {
  auto graph = std::make_shared<Graph>(4, "star");
  graph->add_edge(0, 2);
  graph->add_edge(1, 2);
  graph->add_edge(2, 3);
  return graph;
}

TEST(ReferenceOracle, IntactDeliveryTiming) {
  auto graph = std::make_shared<Graph>(3, "chain");
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  const std::vector<std::vector<NodeId>> nodes = {{0, 1, 2}};
  const auto collection = collection_from_node_lists(graph, nodes);
  SimConfig config;
  std::vector<LaunchSpec> specs(1);
  specs[0].path = 0;
  specs[0].start_time = 2;
  specs[0].length = 3;
  const auto results = run_both(collection, config, specs);
  // Head enters link 0 at t=2, link 1 at t=3; tail (flit 2) leaves link 1
  // at t=3+2 = 5.
  EXPECT_EQ(results.reference.worms[0].status, WormStatus::Delivered);
  EXPECT_EQ(results.reference.worms[0].finish_time, 5);
  EXPECT_FALSE(results.reference.worms[0].truncated);
  EXPECT_EQ(results.reference.metrics.delivered, 1u);
}

TEST(ReferenceOracle, ZeroLengthPathDeliversAtStart) {
  auto graph = std::make_shared<Graph>(2, "pair");
  graph->add_edge(0, 1);
  const std::vector<std::vector<NodeId>> nodes = {{1}};
  const auto collection = collection_from_node_lists(graph, nodes);
  SimConfig config;
  std::vector<LaunchSpec> specs(1);
  specs[0].path = 0;
  specs[0].start_time = 7;
  specs[0].length = 4;
  const auto results = run_both(collection, config, specs);
  EXPECT_EQ(results.reference.worms[0].status, WormStatus::Delivered);
  EXPECT_EQ(results.reference.worms[0].finish_time, 7);
}

TEST(ReferenceOracle, ServeFirstEliminatesTheLatecomer) {
  const auto graph = star_graph();
  const std::vector<std::vector<NodeId>> nodes = {{0, 2, 3}, {1, 2, 3}};
  const auto collection = collection_from_node_lists(graph, nodes);
  SimConfig config;  // serve-first
  std::vector<LaunchSpec> specs(2);
  specs[0].path = 0;
  specs[0].start_time = 0;
  specs[0].length = 3;
  specs[1].path = 1;
  specs[1].start_time = 1;
  specs[1].length = 2;
  const auto results = run_both(collection, config, specs);
  // Worm 0 holds 2→3 over [1,3]; worm 1 arrives there at t=2 and dies at
  // path position 1 with worm 0 as witness.
  EXPECT_EQ(results.reference.worms[0].status, WormStatus::Delivered);
  EXPECT_EQ(results.reference.worms[0].finish_time, 3);
  EXPECT_EQ(results.reference.worms[1].status, WormStatus::Killed);
  EXPECT_EQ(results.reference.worms[1].finish_time, 2);
  EXPECT_EQ(results.reference.worms[1].blocked_at_link, 1u);
  EXPECT_EQ(results.reference.worms[1].blocked_by, 0u);
  EXPECT_EQ(results.reference.metrics.killed, 1u);
  EXPECT_EQ(results.reference.metrics.truncated, 0u);
}

TEST(ReferenceOracle, DeadHeatKillAllEliminatesBoth) {
  const auto graph = star_graph();
  const std::vector<std::vector<NodeId>> nodes = {{0, 2, 3}, {1, 2, 3}};
  const auto collection = collection_from_node_lists(graph, nodes);
  SimConfig config;  // serve-first, kill-all
  std::vector<LaunchSpec> specs(2);
  specs[0].path = 0;
  specs[0].start_time = 0;
  specs[0].length = 2;
  specs[1].path = 1;
  specs[1].start_time = 0;
  specs[1].length = 2;
  const auto results = run_both(collection, config, specs);
  // Both heads hit the empty 2→3 coupler at t=1: photonic corruption
  // kills both, each witnessing the other.
  EXPECT_EQ(results.reference.worms[0].status, WormStatus::Killed);
  EXPECT_EQ(results.reference.worms[1].status, WormStatus::Killed);
  EXPECT_EQ(results.reference.worms[0].finish_time, 1);
  EXPECT_EQ(results.reference.worms[1].finish_time, 1);
  EXPECT_EQ(results.reference.worms[0].blocked_by, 1u);
  EXPECT_EQ(results.reference.worms[1].blocked_by, 0u);
  EXPECT_EQ(results.reference.metrics.killed, 2u);
  EXPECT_EQ(results.reference.metrics.delivered, 0u);
}

TEST(ReferenceOracle, DeadHeatFirstWinsAdmitsTheLowerId) {
  const auto graph = star_graph();
  const std::vector<std::vector<NodeId>> nodes = {{0, 2, 3}, {1, 2, 3}};
  const auto collection = collection_from_node_lists(graph, nodes);
  SimConfig config;
  config.tie = TiePolicy::FirstWins;
  std::vector<LaunchSpec> specs(2);
  specs[0].path = 0;
  specs[0].start_time = 0;
  specs[0].length = 2;
  specs[1].path = 1;
  specs[1].start_time = 0;
  specs[1].length = 2;
  const auto results = run_both(collection, config, specs);
  EXPECT_EQ(results.reference.worms[0].status, WormStatus::Delivered);
  EXPECT_EQ(results.reference.worms[0].finish_time, 2);
  EXPECT_EQ(results.reference.worms[1].status, WormStatus::Killed);
  EXPECT_EQ(results.reference.worms[1].blocked_by, 0u);
}

TEST(ReferenceOracle, PriorityTruncationLeavesATravellingRemnant) {
  const auto graph = star_graph();
  const std::vector<std::vector<NodeId>> nodes = {{0, 2, 3}, {1, 2, 3}};
  const auto collection = collection_from_node_lists(graph, nodes);
  SimConfig config;
  config.rule = ContentionRule::Priority;
  std::vector<LaunchSpec> specs(2);
  specs[0].path = 0;  // the low-priority occupant
  specs[0].start_time = 0;
  specs[0].length = 4;
  specs[0].priority = 0;
  specs[1].path = 1;  // the high-priority challenger
  specs[1].start_time = 1;
  specs[1].length = 2;
  specs[1].priority = 1;
  const auto results = run_both(collection, config, specs);
  // Worm 1 reaches 2→3 at t=2 while worm 0 streams through it ([1,4]).
  // The higher rank wins: worm 0 is cut at the coupler at t=2, so only
  // the flit that crossed at t=1 survives downstream — a 1-flit remnant
  // whose tail left the last link at t=1. Worm 0's arrival is a failed
  // (truncated) delivery, not a kill.
  EXPECT_EQ(results.reference.worms[0].status, WormStatus::Delivered);
  EXPECT_TRUE(results.reference.worms[0].truncated);
  EXPECT_EQ(results.reference.worms[0].finish_time, 1);
  EXPECT_EQ(results.reference.worms[1].status, WormStatus::Delivered);
  EXPECT_FALSE(results.reference.worms[1].truncated);
  EXPECT_EQ(results.reference.worms[1].finish_time, 3);
  EXPECT_EQ(results.reference.metrics.truncated, 1u);
  EXPECT_EQ(results.reference.metrics.truncated_arrivals, 1u);
  EXPECT_EQ(results.reference.metrics.delivered, 1u);
  EXPECT_EQ(results.reference.metrics.killed, 0u);
}

// Regression for the same-step double-cut bug the fuzzer found (seed
// 20260805, case 640, minimized): a draining worm whose truncated tail
// would leave the last link exactly at `now` must remain cuttable by
// later contention groups of the same step. The engine used to finalize
// its delivery at the first cut and report finish_time 2; the model (and
// the reference) says the second cut discards the t=2 flit, leaving a
// 1-flit remnant that finished at t=1.
TEST(ReferenceOracle, SameStepDoubleCutShortensTheRemnantTwice) {
  auto graph = std::make_shared<Graph>(4, "claw");
  graph->add_edge(0, 1);
  graph->add_edge(0, 2);
  graph->add_edge(0, 3);
  const std::vector<std::vector<NodeId>> nodes = {
      {2, 0, 3}, {1, 0}, {1, 0, 3}};
  const auto collection = collection_from_node_lists(graph, nodes);
  SimConfig config;
  config.rule = ContentionRule::Priority;
  std::vector<LaunchSpec> specs(3);
  specs[0].path = 0;  // cuts the victim on 0→3 at t=2
  specs[0].start_time = 1;
  specs[0].length = 1;
  specs[0].priority = 2;
  specs[1].path = 1;  // cuts the victim on 1→0, also at t=2
  specs[1].start_time = 2;
  specs[1].length = 1;
  specs[1].priority = 1;
  specs[2].path = 2;  // the long low-priority victim
  specs[2].start_time = 0;
  specs[2].length = 4;
  specs[2].priority = 0;
  const auto results = run_both(collection, config, specs);
  EXPECT_EQ(results.reference.worms[2].status, WormStatus::Delivered);
  EXPECT_TRUE(results.reference.worms[2].truncated);
  EXPECT_EQ(results.reference.worms[2].finish_time, 1);
  EXPECT_EQ(results.reference.worms[0].status, WormStatus::Delivered);
  EXPECT_EQ(results.reference.worms[0].finish_time, 2);
  EXPECT_EQ(results.reference.worms[1].status, WormStatus::Delivered);
  EXPECT_EQ(results.reference.worms[1].finish_time, 2);
  EXPECT_EQ(results.reference.metrics.truncated, 2u);
  EXPECT_EQ(results.reference.metrics.truncated_arrivals, 1u);
  EXPECT_EQ(results.reference.metrics.delivered, 2u);
  EXPECT_EQ(results.reference.metrics.killed, 0u);
}

TEST(ReferenceOracle, ConvertingCouplerRetunesAroundTheOccupant) {
  auto graph = std::make_shared<Graph>(3, "chain");
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  const std::vector<std::vector<NodeId>> nodes = {{0, 1, 2}, {1, 2}};
  const auto collection = collection_from_node_lists(graph, nodes);
  SimConfig config;
  config.bandwidth = 2;
  config.conversion = ConversionMode::Full;
  std::vector<LaunchSpec> specs(2);
  specs[0].path = 0;
  specs[0].start_time = 0;
  specs[0].length = 3;
  specs[0].wavelength = 0;
  specs[1].path = 1;
  specs[1].start_time = 2;
  specs[1].length = 2;
  specs[1].wavelength = 0;
  const auto results = run_both(collection, config, specs);
  // Worm 1 wants λ0 on 1→2 at t=2, but worm 0 streams there over [1,3];
  // the converting coupler retunes it onto the free λ1 and both deliver.
  EXPECT_EQ(results.reference.worms[0].status, WormStatus::Delivered);
  EXPECT_EQ(results.reference.worms[0].finish_time, 3);
  EXPECT_EQ(results.reference.worms[1].status, WormStatus::Delivered);
  EXPECT_EQ(results.reference.worms[1].finish_time, 3);
  EXPECT_EQ(results.reference.metrics.retunes, 1u);
  EXPECT_EQ(results.reference.metrics.contentions, 1u);
  EXPECT_EQ(results.reference.metrics.delivered, 2u);
}

}  // namespace
}  // namespace opto
