#include <gtest/gtest.h>

#include <set>

#include "opto/rng/rng.hpp"
#include "opto/rng/splitmix64.hpp"

namespace opto {
namespace {

TEST(Rng, DeterministicInSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Rng, SplitMixKnownBehaviour) {
  // splitmix64(0) first output, per the reference implementation.
  SplitMix64 mixer(0);
  EXPECT_EQ(mixer.next(), 0xe220a8397b1dcdafull);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(2);
  std::vector<int> counts(4, 0);
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++counts[rng.next_below(4)];
  for (int bucket : counts) {
    EXPECT_GT(bucket, draws / 4 - 600);
    EXPECT_LT(bucket, draws / 4 + 600);
  }
}

TEST(Rng, NextInInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.next_bernoulli(0.0));
  EXPECT_TRUE(rng.next_bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bernoulli(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(6);
  const auto perm = rng.permutation(50);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, StreamsIndependent) {
  Rng a = Rng::stream(7, 0);
  Rng b = Rng::stream(7, 1);
  Rng a2 = Rng::stream(7, 0);
  bool differs = false;
  for (int i = 0; i < 50; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, a2.next_u64());
    differs |= va != b.next_u64();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(8);
  std::vector<int> items{1, 2, 3, 4, 5};
  auto copy = items;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

}  // namespace
}  // namespace opto
