// Randomized stress: fuzz the engine against the flit-level reference
// and the pass validator across random topologies, random launch
// parameters, and random configs. Runs a small dose by default; set
// OPTO_STRESS=<n> to multiply the iteration count (soak mode).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "opto/graph/mesh.hpp"
#include "opto/graph/graph_algo.hpp"
#include "opto/graph/random_regular.hpp"
#include "opto/paths/bfs_shortest.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/reference.hpp"
#include "opto/sim/validate.hpp"
#include "opto/util/string_util.hpp"

namespace opto {
namespace {

std::size_t stress_factor() {
  if (const char* env = std::getenv("OPTO_STRESS"))
    if (const auto n = parse_int(env); n && *n > 0)
      return static_cast<std::size_t>(*n);
  return 1;
}

/// Random small collection: one of several generators, fuzzed shape.
PathCollection random_collection(Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: {
      auto topo = std::make_shared<MeshTopology>(make_torus(
          {static_cast<std::uint32_t>(3 + rng.next_below(3)),
           static_cast<std::uint32_t>(3 + rng.next_below(3))}));
      return mesh_random_function(topo, rng);
    }
    case 1: {
      // Random regular graphs can come out disconnected; redraw until
      // routable.
      const auto nodes =
          static_cast<std::uint32_t>(10 + 2 * rng.next_below(8));
      auto graph = std::make_shared<Graph>(
          make_random_regular(nodes, 3, rng.next_u64()));
      while (!is_connected(*graph))
        graph = std::make_shared<Graph>(
            make_random_regular(nodes, 3, rng.next_u64()));
      return bfs_random_function(graph, rng);
    }
    case 2: {
      StructureBuilder builder;
      builder.add_staircase(
          static_cast<std::uint32_t>(2 + rng.next_below(5)),
          static_cast<std::uint32_t>(8 + rng.next_below(8)), 4);
      builder.add_triangle(8, 4);
      return std::move(builder).build();
    }
    default:
      return make_bundle_collection(
          1, static_cast<std::uint32_t>(2 + rng.next_below(20)),
          static_cast<std::uint32_t>(3 + rng.next_below(10)));
  }
}

TEST(Stress, FuzzDifferentialAndValidators) {
  const std::size_t iterations = 40 * stress_factor();
  Rng meta(0xfeedbeef);
  for (std::size_t iteration = 0; iteration < iterations; ++iteration) {
    const auto collection = random_collection(meta);
    if (collection.empty()) continue;

    SimConfig config;
    config.rule = meta.next_bernoulli(0.5) ? ContentionRule::ServeFirst
                                           : ContentionRule::Priority;
    config.tie = meta.next_bernoulli(0.5) ? TiePolicy::KillAll
                                          : TiePolicy::FirstWins;
    config.bandwidth = static_cast<std::uint16_t>(1 + meta.next_below(4));
    config.record_trace = true;
    if (meta.next_bernoulli(0.3)) config.conversion = ConversionMode::Full;

    const auto length = static_cast<std::uint32_t>(1 + meta.next_below(9));
    const auto spread = static_cast<SimTime>(1 + meta.next_below(12));
    std::vector<LaunchSpec> specs(collection.size());
    const auto ranks = meta.permutation(collection.size());
    for (PathId id = 0; id < collection.size(); ++id) {
      specs[id].path = id;
      specs[id].start_time = static_cast<SimTime>(
          meta.next_below(static_cast<std::uint64_t>(spread)));
      specs[id].wavelength =
          static_cast<Wavelength>(meta.next_below(config.bandwidth));
      specs[id].priority = ranks[id];
      specs[id].length = length;
    }

    Simulator sim(collection, config);
    const auto fast = sim.run(specs);
    const auto slow = reference_run(collection, config, specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_EQ(fast.worms[i].status, slow.worms[i].status)
          << "iteration " << iteration << " worm " << i;
      ASSERT_EQ(fast.worms[i].finish_time, slow.worms[i].finish_time)
          << "iteration " << iteration << " worm " << i;
    }
    ASSERT_EQ(fast.metrics.killed, slow.metrics.killed)
        << "iteration " << iteration;
    ASSERT_EQ(fast.metrics.delivered, slow.metrics.delivered)
        << "iteration " << iteration;

    const auto pass = validate_pass(collection, config, specs, fast);
    ASSERT_TRUE(pass.ok()) << "iteration " << iteration << ": "
                           << pass.violations.front();
    const auto occupancy = validate_occupancy(collection, specs, fast);
    ASSERT_TRUE(occupancy.ok()) << "iteration " << iteration << ": "
                                << occupancy.violations.front();
  }
}

}  // namespace
}  // namespace opto
