// End-to-end behaviour on the lower-bound structures: the qualitative
// separations the paper proves must be visible in simulation.
#include <gtest/gtest.h>

#include "opto/core/trial_and_failure.hpp"
#include "opto/paths/lowerbound_structures.hpp"

namespace opto {
namespace {

ProblemShape shape_of(const PathCollection& collection, std::uint32_t L,
                      std::uint16_t B) {
  ProblemShape shape;
  shape.size = collection.size();
  shape.dilation = collection.dilation();
  shape.path_congestion = collection.path_congestion();
  shape.worm_length = L;
  shape.bandwidth = B;
  return shape;
}

double mean_rounds(const PathCollection& collection, ProtocolConfig config,
                   DeltaSchedule& schedule, int trials,
                   std::uint64_t seed0) {
  double total = 0;
  for (int trial = 0; trial < trials; ++trial) {
    TrialAndFailure protocol(collection, config, schedule);
    const auto result = protocol.run(seed0 + trial);
    EXPECT_TRUE(result.success);
    total += result.rounds_used;
  }
  return total / trials;
}

TEST(IntegrationStructures, StaircaseCompletes) {
  const std::uint32_t L = 4;
  const auto collection = make_staircase_collection(8, 5, 16, L);
  ProtocolConfig config;
  config.worm_length = L;
  config.max_rounds = 500;
  PaperSchedule schedule(shape_of(collection, L, 1));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(5);
  EXPECT_TRUE(result.success);
}

TEST(IntegrationStructures, BundleCongestionHalvesAcrossRounds) {
  // Lemma 2.4's mechanism: with the paper schedule, the active set (and so
  // the active congestion) decays geometrically or faster.
  const auto collection = make_bundle_collection(1, 128, 12);
  ProtocolConfig config;
  config.worm_length = 4;
  config.max_rounds = 500;
  config.track_congestion = true;
  PaperSchedule schedule(shape_of(collection, 4, 1));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(31);
  ASSERT_TRUE(result.success);
  // After three rounds the survivors must be well below half.
  if (result.rounds.size() > 3) {
    EXPECT_LT(result.rounds[3].active_before, 64u);
  }
}

TEST(IntegrationStructures, PriorityBeatsServeFirstOnTriangles) {
  // Main Thm 1.2 vs 1.3 separation: with a small fixed delay range,
  // serve-first needs more rounds than priority on cyclic structures.
  const std::uint32_t L = 4;
  const auto collection = make_triangle_collection(12, 10, L);
  FixedSchedule schedule(4);

  ProtocolConfig serve_first;
  serve_first.worm_length = L;
  serve_first.max_rounds = 3000;

  ProtocolConfig priority = serve_first;
  priority.rule = ContentionRule::Priority;

  const double sf_rounds = mean_rounds(collection, serve_first, schedule, 6, 900);
  const double pr_rounds = mean_rounds(collection, priority, schedule, 6, 900);
  EXPECT_LT(pr_rounds, sf_rounds);
}

TEST(IntegrationStructures, MixedCollectionRoutes) {
  StructureBuilder builder;
  builder.add_staircase(4, 12, 4);
  builder.add_bundle(16, 8);
  builder.add_triangle(8, 4);
  const auto collection = std::move(builder).build();

  ProtocolConfig config;
  config.worm_length = 4;
  config.bandwidth = 2;
  config.max_rounds = 500;
  PaperSchedule schedule(shape_of(collection, 4, 2));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(77);
  EXPECT_TRUE(result.success);
}

TEST(IntegrationStructures, WiderBundlesNeedMoreRounds) {
  // The loglog term grows with C̃ — qualitatively, wider bundles take at
  // least as many rounds under a fixed small delay range.
  ProtocolConfig config;
  config.worm_length = 2;
  config.max_rounds = 5000;
  FixedSchedule schedule(8);

  const auto narrow = make_bundle_collection(4, 4, 8);
  const auto wide = make_bundle_collection(4, 64, 8);
  const double narrow_rounds = mean_rounds(narrow, config, schedule, 5, 400);
  const double wide_rounds = mean_rounds(wide, config, schedule, 5, 400);
  EXPECT_LE(narrow_rounds, wide_rounds);
}

}  // namespace
}  // namespace opto
