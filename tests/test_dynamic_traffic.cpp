// Dynamic circuit traffic ([34] substrate): blocking probability basics
// and the conversion advantage.
#include <gtest/gtest.h>

#include "opto/core/dynamic_traffic.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/graph/ring.hpp"

namespace opto {
namespace {

DynamicTrafficConfig config_with(double load, std::uint16_t B,
                                 bool conversion) {
  DynamicTrafficConfig config;
  config.offered_load = load;
  config.bandwidth = B;
  config.conversion = conversion;
  config.arrivals = 6000;
  config.warmup = 1000;
  return config;
}

TEST(DynamicTraffic, LightLoadRarelyBlocks) {
  const auto ring = make_ring(16);
  const auto result =
      simulate_dynamic_traffic(ring, config_with(0.2, 8, false), 1);
  EXPECT_EQ(result.offered, 5000u);
  EXPECT_LT(result.blocking_probability, 0.01);
  EXPECT_GT(result.mean_route_length, 1.0);
  EXPECT_LE(result.mean_route_length, 8.0);  // ring-16 diameter
}

TEST(DynamicTraffic, HeavyLoadBlocksOften) {
  const auto ring = make_ring(16);
  const auto result =
      simulate_dynamic_traffic(ring, config_with(64.0, 4, false), 2);
  EXPECT_GT(result.blocking_probability, 0.2);
  EXPECT_GT(result.utilization, 0.1);
}

TEST(DynamicTraffic, BlockingMonotoneInLoad) {
  const auto torus = make_torus({4, 4});
  double previous = -1.0;
  for (const double load : {2.0, 8.0, 32.0}) {
    const auto result = simulate_dynamic_traffic(
        torus.graph, config_with(load, 4, false), 3);
    EXPECT_GE(result.blocking_probability, previous);
    previous = result.blocking_probability;
  }
}

TEST(DynamicTraffic, ConversionReducesBlocking) {
  // The [34] headline: relaxing wavelength continuity can only help, and
  // visibly does at moderate load.
  const auto torus = make_torus({4, 4});
  const auto without = simulate_dynamic_traffic(
      torus.graph, config_with(24.0, 4, false), 4);
  const auto with = simulate_dynamic_traffic(
      torus.graph, config_with(24.0, 4, true), 4);
  EXPECT_LT(with.blocking_probability, without.blocking_probability);
  EXPECT_GT(without.blocking_probability, 0.02);
}

TEST(DynamicTraffic, MoreWavelengthsReduceBlocking) {
  const auto ring = make_ring(12);
  const auto narrow =
      simulate_dynamic_traffic(ring, config_with(16.0, 2, false), 5);
  const auto wide =
      simulate_dynamic_traffic(ring, config_with(16.0, 16, false), 5);
  EXPECT_LT(wide.blocking_probability, narrow.blocking_probability);
}

TEST(DynamicTraffic, DeterministicInSeed) {
  const auto ring = make_ring(10);
  const auto a = simulate_dynamic_traffic(ring, config_with(8.0, 4, false), 7);
  const auto b = simulate_dynamic_traffic(ring, config_with(8.0, 4, false), 7);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  const auto c = simulate_dynamic_traffic(ring, config_with(8.0, 4, false), 8);
  EXPECT_NE(a.blocked, c.blocked);
}

TEST(DynamicTraffic, ConnectionTableBoundedByActiveConnections) {
  // Regression: the connection table used to grow by one row per
  // accepted arrival for the whole run. With ids recycled through the
  // free list, its high-water mark tracks concurrently-held circuits —
  // ~load Erlangs in steady state — independent of arrival count.
  const auto ring = make_ring(12);
  auto config = config_with(8.0, 8, false);
  config.arrivals = 60000;
  config.warmup = 2000;
  const auto result = simulate_dynamic_traffic(ring, config, 11);
  EXPECT_GT(result.offered, 50000u);
  EXPECT_GT(result.peak_connections, 0u);
  EXPECT_LT(result.peak_connections, 200u);

  // Quadrupling the arrivals must not grow the table materially: the
  // steady state is the same (the max of more samples drifts up only
  // logarithmically, nothing like 4×).
  auto longer = config;
  longer.arrivals = 240000;
  const auto more = simulate_dynamic_traffic(ring, longer, 11);
  EXPECT_GE(more.peak_connections, result.peak_connections);
  EXPECT_LT(more.peak_connections, 200u);
}

TEST(DynamicTraffic, UtilizationWithinUnitInterval) {
  const auto torus = make_torus({3, 3});
  for (const double load : {1.0, 10.0, 100.0}) {
    const auto result = simulate_dynamic_traffic(
        torus.graph, config_with(load, 4, true), 9);
    EXPECT_GE(result.utilization, 0.0);
    EXPECT_LE(result.utilization, 1.0);
  }
}

}  // namespace
}  // namespace opto
