#include <gtest/gtest.h>

#include "opto/graph/expander.hpp"
#include "opto/graph/graph_algo.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/graph/node_symmetry.hpp"
#include "opto/graph/ring.hpp"

namespace opto {
namespace {

TEST(Expander, CirculantBasics) {
  const auto graph = make_circulant(12, {1, 3});
  EXPECT_EQ(graph.node_count(), 12u);
  // 4-regular.
  for (NodeId u = 0; u < 12; ++u) EXPECT_EQ(graph.degree(u), 4u);
  EXPECT_TRUE(is_connected(graph));
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(0, 3));
  EXPECT_TRUE(graph.has_edge(0, 9));  // wrap of offset 3
  EXPECT_FALSE(graph.has_edge(0, 2));
}

TEST(Expander, CirculantWithOffsetOneIsRing) {
  const auto circulant = make_circulant(9, {1});
  const auto ring = make_ring(9);
  EXPECT_EQ(circulant.undirected_edge_count(), ring.undirected_edge_count());
  EXPECT_EQ(diameter(circulant), diameter(ring));
}

TEST(Expander, CirculantIsNodeSymmetric) {
  EXPECT_TRUE(is_node_symmetric(make_circulant(10, {1, 4})));
  EXPECT_TRUE(is_node_symmetric(make_circulant(8, {1, 2, 4})));
}

TEST(Expander, CirculantShrinksDiameter) {
  // Extra chords cut the ring diameter.
  EXPECT_LT(diameter(make_circulant(64, {1, 8})),
            diameter(make_circulant(64, {1})));
}

TEST(Expander, MargulisBasics) {
  const auto graph = make_margulis_expander(6);
  EXPECT_EQ(graph.node_count(), 36u);
  EXPECT_TRUE(is_connected(graph));
  EXPECT_LE(graph.max_degree(), 8u);
  // Expanders have small diameter: O(log n) — generous check.
  EXPECT_LE(diameter(graph), 8u);
}

TEST(Expander, MargulisExpandsBetterThanRing) {
  const std::uint32_t samples = 200;
  const auto margulis = make_margulis_expander(8);      // 64 nodes
  const auto ring = make_ring(64);
  const double margulis_expansion =
      sampled_edge_expansion(margulis, samples, 5);
  const double ring_expansion = sampled_edge_expansion(ring, samples, 5);
  EXPECT_GT(margulis_expansion, ring_expansion);
}

TEST(Expander, SampledExpansionPositiveOnConnected) {
  const auto torus = make_torus({4, 4});
  EXPECT_GT(sampled_edge_expansion(torus.graph, 100, 7), 0.0);
}

TEST(Expander, SampledExpansionDeterministic) {
  const auto graph = make_circulant(32, {1, 5});
  EXPECT_DOUBLE_EQ(sampled_edge_expansion(graph, 50, 11),
                   sampled_edge_expansion(graph, 50, 11));
}

}  // namespace
}  // namespace opto
