// End-to-end protocol runs on the paper's application networks
// (Theorems 1.5–1.7): everything must route, and observed quantities must
// sit in the regimes the theorems describe.
#include <gtest/gtest.h>

#include <memory>

#include "opto/analysis/bounds.hpp"
#include "opto/core/trial_and_failure.hpp"
#include "opto/graph/butterfly.hpp"
#include "opto/graph/hypercube.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/leveled.hpp"
#include "opto/paths/workloads.hpp"

namespace opto {
namespace {

ProblemShape shape_of(const PathCollection& collection, std::uint32_t L,
                      std::uint16_t B) {
  ProblemShape shape;
  shape.size = collection.size();
  shape.dilation = collection.dilation();
  shape.path_congestion = collection.path_congestion();
  shape.worm_length = L;
  shape.bandwidth = B;
  return shape;
}

TEST(IntegrationNetworks, MeshRandomFunctionServeFirst) {
  // Theorem 1.6 setup: d-dim mesh, dimension-order, serve-first.
  auto topo = std::make_shared<MeshTopology>(make_mesh({6, 6}));
  Rng rng(101);
  const auto collection = mesh_random_function(topo, rng);

  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 4;
  config.max_rounds = 300;
  PaperSchedule schedule(shape_of(collection, 4, 2));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(101);
  EXPECT_TRUE(result.success);
  // Thm 1.6 regime: rounds should be tiny compared to n (loglog-ish).
  EXPECT_LE(result.rounds_used, 12u);
}

TEST(IntegrationNetworks, TorusRandomFunctionPriority) {
  // Theorem 1.5 setup: node-symmetric network + priority routers.
  auto topo = std::make_shared<MeshTopology>(make_torus({5, 5}));
  Rng rng(103);
  const auto collection = mesh_random_function(topo, rng);

  ProtocolConfig config;
  config.rule = ContentionRule::Priority;
  config.bandwidth = 2;
  config.worm_length = 4;
  config.max_rounds = 300;
  PaperSchedule schedule(shape_of(collection, 4, 2));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(103);
  EXPECT_TRUE(result.success);
  EXPECT_LE(result.rounds_used, 12u);
}

TEST(IntegrationNetworks, HypercubeBfsPermutation) {
  auto cube = std::make_shared<Graph>(make_hypercube(5));
  Rng rng(107);
  const auto collection = bfs_random_permutation(cube, rng);

  ProtocolConfig config;
  config.rule = ContentionRule::Priority;
  config.bandwidth = 4;
  config.worm_length = 8;
  config.max_rounds = 300;
  PaperSchedule schedule(shape_of(collection, 8, 4));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(107);
  EXPECT_TRUE(result.success);
}

TEST(IntegrationNetworks, ButterflyQFunctionIsLeveledAndRoutes) {
  // Theorem 1.7 setup: butterfly q-function on the unique leveled system.
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(5));
  Rng rng(109);
  const auto collection = butterfly_random_q_function(topo, 2, rng);
  EXPECT_TRUE(is_leveled(collection));

  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 4;
  config.max_rounds = 300;
  PaperSchedule schedule(shape_of(collection, 4, 2));
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(109);
  EXPECT_TRUE(result.success);
  EXPECT_LE(result.rounds_used, 15u);
}

TEST(IntegrationNetworks, ChargedTimeWithinBoundRegime) {
  // The measured charged time should not exceed a generous constant times
  // the Thm 1.1 closed-form bound (shape check, not absolute).
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(4));
  Rng rng(113);
  const auto collection = butterfly_random_q_function(topo, 1, rng);
  const auto shape = shape_of(collection, 4, 2);

  ProtocolConfig config;
  config.bandwidth = 2;
  config.worm_length = 4;
  config.max_rounds = 300;
  PaperSchedule schedule(shape);
  TrialAndFailure protocol(collection, config, schedule);
  const auto result = protocol.run(113);
  ASSERT_TRUE(result.success);
  EXPECT_LT(static_cast<double>(result.total_charged_time),
            50.0 * runtime_leveled(shape) + 1000.0);
}

TEST(IntegrationNetworks, BandwidthMonotonicity) {
  // More wavelengths can only help (statistically): compare rounds at
  // B=1 vs B=8 on the same workload and seed.
  auto topo = std::make_shared<MeshTopology>(make_mesh({5, 5}));
  Rng rng(127);
  const auto collection = mesh_random_function(topo, rng);

  auto run_with_bandwidth = [&](std::uint16_t B) {
    ProtocolConfig config;
    config.bandwidth = B;
    config.worm_length = 6;
    config.max_rounds = 400;
    PaperSchedule schedule(shape_of(collection, 6, B));
    TrialAndFailure protocol(collection, config, schedule);
    return protocol.run(127);
  };
  const auto narrow = run_with_bandwidth(1);
  const auto wide = run_with_bandwidth(8);
  ASSERT_TRUE(narrow.success);
  ASSERT_TRUE(wide.success);
  EXPECT_LE(wide.total_charged_time, narrow.total_charged_time);
}

}  // namespace
}  // namespace opto
