// Contention-component decomposition (paths/path_collection.hpp):
// flat_paths() correctness + invalidation, and components() checked
// against a brute-force pairwise edge-intersection oracle on both
// hand-built and generator-produced collections.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/path_collection.hpp"
#include "opto/testlib/fuzz_case.hpp"
#include "opto/testlib/generator.hpp"

namespace opto {
namespace {

std::shared_ptr<const Graph> chain_graph(NodeId nodes) {
  auto graph = std::make_shared<Graph>(nodes, "chain");
  for (NodeId i = 0; i + 1 < nodes; ++i) graph->add_edge(i, i + 1);
  return graph;
}

/// Brute-force oracle: unite paths pairwise when their directed-link sets
/// intersect, then relabel components by first appearance in path-id
/// order — the same canonical numbering components() promises.
ComponentDecomposition brute_force_components(const PathCollection& c) {
  const std::uint32_t n = c.size();
  std::vector<std::uint32_t> parent(n);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::vector<std::set<EdgeId>> links(n);
  for (PathId p = 0; p < n; ++p)
    for (const EdgeId link : c.path(p).links()) links[p].insert(link);
  for (PathId p = 0; p < n; ++p)
    for (PathId q = p + 1; q < n; ++q) {
      bool shares = false;
      for (const EdgeId link : links[p])
        if (links[q].count(link) != 0) {
          shares = true;
          break;
        }
      if (shares) parent[find(p)] = find(q);
    }
  ComponentDecomposition dec;
  dec.component_of.resize(n);
  std::vector<std::uint32_t> label(n, UINT32_MAX);
  for (PathId p = 0; p < n; ++p) {
    const std::uint32_t root = find(p);
    if (label[root] == UINT32_MAX) {
      label[root] = dec.count++;
      dec.sizes.push_back(0);
    }
    dec.component_of[p] = label[root];
    ++dec.sizes[label[root]];
  }
  return dec;
}

void expect_same_decomposition(const ComponentDecomposition& got,
                               const ComponentDecomposition& want) {
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(got.component_of, want.component_of);
  EXPECT_EQ(got.sizes, want.sizes);
}

TEST(FlatPaths, MatchesPathLinks) {
  auto graph = chain_graph(6);
  const std::vector<std::vector<NodeId>> lists = {
      {0, 1, 2}, {3}, {2, 3, 4, 5}, {1, 2}};
  const PathCollection c = collection_from_node_lists(graph, lists);
  const FlatPaths& flat = c.flat_paths();
  ASSERT_EQ(flat.offsets.size(), c.size() + 1);
  EXPECT_EQ(flat.offsets.front(), 0u);
  EXPECT_EQ(flat.offsets.back(), flat.links.size());
  for (PathId p = 0; p < c.size(); ++p) {
    const auto links = c.path(p).links();
    ASSERT_EQ(flat.offsets[p + 1] - flat.offsets[p], links.size());
    for (std::size_t i = 0; i < links.size(); ++i)
      EXPECT_EQ(flat.links[flat.offsets[p] + i], links[i]);
  }
}

TEST(FlatPaths, InvalidatedByAdd) {
  auto graph = chain_graph(4);
  PathCollection c = collection_from_node_lists(
      graph, std::vector<std::vector<NodeId>>{{0, 1}});
  EXPECT_EQ(c.flat_paths().offsets.size(), 2u);
  EXPECT_EQ(c.components().count, 1u);
  const PathCollection grown = collection_from_node_lists(
      graph, std::vector<std::vector<NodeId>>{{0, 1}, {2, 3}});
  for (const Path& path : grown.paths())
    if (&path != &grown.paths().front()) {
      PathCollection copy = c;  // also exercises the cache-dropping copy
      copy.add(path);
      EXPECT_EQ(copy.flat_paths().offsets.size(), 3u);
      EXPECT_EQ(copy.components().count, 2u);
    }
}

TEST(Components, EmptyAndSingletons) {
  auto graph = chain_graph(5);
  const PathCollection empty(graph);
  EXPECT_EQ(empty.components().count, 0u);
  // Zero-length paths use no links: each is its own component.
  const PathCollection singles = collection_from_node_lists(
      graph, std::vector<std::vector<NodeId>>{{0}, {0}, {3}});
  const ComponentDecomposition& dec = singles.components();
  EXPECT_EQ(dec.count, 3u);
  EXPECT_EQ(dec.sizes, (std::vector<std::uint32_t>{1, 1, 1}));
}

TEST(Components, CanonicalNumberingByFirstAppearance) {
  auto graph = chain_graph(8);
  // Path 0 and path 2 share the 4→5 link; path 1 is separate; the
  // first-appearance rule must number {0,2} as 0 and {1} as 1.
  const PathCollection c = collection_from_node_lists(
      graph, std::vector<std::vector<NodeId>>{{4, 5}, {0, 1, 2}, {4, 5, 6}});
  const ComponentDecomposition& dec = c.components();
  EXPECT_EQ(dec.count, 2u);
  EXPECT_EQ(dec.component_of, (std::vector<std::uint32_t>{0, 1, 0}));
  EXPECT_EQ(dec.sizes, (std::vector<std::uint32_t>{2, 1}));
}

TEST(Components, DirectedSharingOnly) {
  // Opposite directions of one undirected edge are distinct fibers: two
  // paths traversing 0—1 in opposite directions never share a link.
  auto graph = chain_graph(2);
  const PathCollection c = collection_from_node_lists(
      graph, std::vector<std::vector<NodeId>>{{0, 1}, {1, 0}});
  EXPECT_EQ(c.components().count, 2u);
}

TEST(Components, LowerBoundStructuresSplitPerStructure) {
  // Each staircase/bundle structure is internally link-connected and
  // link-disjoint from the others: k structures → k components.
  const PathCollection stairs = make_staircase_collection(6, 4, 12, 5);
  const ComponentDecomposition& sdec = stairs.components();
  EXPECT_EQ(sdec.count, 6u);
  for (const std::uint32_t size : sdec.sizes) EXPECT_EQ(size, 4u);

  const PathCollection bundles = make_bundle_collection(5, 3, 4);
  const ComponentDecomposition& bdec = bundles.components();
  EXPECT_EQ(bdec.count, 5u);
  for (const std::uint32_t size : bdec.sizes) EXPECT_EQ(size, 3u);
}

TEST(Components, MatchesBruteForceOnGeneratedCases) {
  std::uint64_t multi = 0;
  for (std::uint64_t index = 0; index < 300; ++index) {
    const testlib::FuzzCase fuzz = testlib::generate_case(20260805, index);
    const auto built = testlib::build_case(fuzz);
    ASSERT_NE(built, nullptr) << "case " << index;
    const ComponentDecomposition& got = built->collection.components();
    const ComponentDecomposition want =
        brute_force_components(built->collection);
    expect_same_decomposition(got, want);
    if (got.count > 1) ++multi;
  }
  // The generator's disjoint/hub families must keep the decomposition
  // regime covered, or the sharded cross-check in the differ is vacuous.
  EXPECT_GT(multi, 100u);
}

}  // namespace
}  // namespace opto
