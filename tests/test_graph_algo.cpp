#include <gtest/gtest.h>

#include "opto/graph/graph_algo.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/graph/ring.hpp"

namespace opto {
namespace {

TEST(GraphAlgo, BfsDistancesOnPath) {
  Graph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(GraphAlgo, BfsDistancesDisconnected) {
  Graph graph(3);
  graph.add_edge(0, 1);
  const auto dist = bfs_distances(graph, 0);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_FALSE(is_connected(graph));
}

TEST(GraphAlgo, BfsPathIsShortest) {
  const auto topo = make_mesh({3, 3});
  const auto path = bfs_path(topo.graph, 0, 8);
  ASSERT_EQ(path.size(), 5u);  // distance 4 => 5 nodes
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 8u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_TRUE(topo.graph.has_edge(path[i], path[i + 1]));
}

TEST(GraphAlgo, BfsPathCanonicalTieBreak) {
  // On a 4-cycle 0-1-3-2-0 both 0-1-3 and 0-2-3 are shortest; the
  // canonical rule picks the smaller intermediate node.
  Graph graph(4);
  graph.add_edge(0, 1);
  graph.add_edge(1, 3);
  graph.add_edge(0, 2);
  graph.add_edge(2, 3);
  const auto path = bfs_path(graph, 0, 3);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 3}));
}

TEST(GraphAlgo, BfsPathSelf) {
  Graph graph(2);
  graph.add_edge(0, 1);
  EXPECT_EQ(bfs_path(graph, 1, 1), (std::vector<NodeId>{1}));
}

TEST(GraphAlgo, BfsPathUnreachableEmpty) {
  Graph graph(3);
  graph.add_edge(0, 1);
  EXPECT_TRUE(bfs_path(graph, 0, 2).empty());
}

TEST(GraphAlgo, EccentricityAndDiameter) {
  const auto graph = make_ring(8);
  EXPECT_EQ(eccentricity(graph, 0), 4u);
  EXPECT_EQ(diameter(graph), 4u);
}

}  // namespace
}  // namespace opto
