// The public pass validator: green on real engine output across the
// parameter space, red on corrupted results.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "opto/graph/mesh.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/validate.hpp"

namespace opto {
namespace {

using Params = std::tuple<ContentionRule, TiePolicy, int, int>;

class ValidateSweep : public ::testing::TestWithParam<Params> {
 protected:
  SimConfig config() const {
    SimConfig cfg;
    cfg.rule = std::get<0>(GetParam());
    cfg.tie = std::get<1>(GetParam());
    cfg.bandwidth = static_cast<std::uint16_t>(std::get<2>(GetParam()));
    cfg.record_trace = true;
    return cfg;
  }
  std::uint32_t length() const {
    return static_cast<std::uint32_t>(std::get<3>(GetParam()));
  }
};

TEST_P(ValidateSweep, EngineOutputAlwaysValidates) {
  auto topo = std::make_shared<MeshTopology>(make_torus({4, 4}));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const auto collection = mesh_random_function(topo, rng);
    std::vector<LaunchSpec> specs(collection.size());
    const auto ranks = rng.permutation(collection.size());
    for (PathId id = 0; id < collection.size(); ++id) {
      specs[id].path = id;
      specs[id].start_time = static_cast<SimTime>(rng.next_below(6));
      specs[id].wavelength =
          static_cast<Wavelength>(rng.next_below(config().bandwidth));
      specs[id].priority = ranks[id];
      specs[id].length = length();
    }
    Simulator sim(collection, config());
    const auto result = sim.run(specs);

    const auto pass_report =
        validate_pass(collection, config(), specs, result);
    EXPECT_TRUE(pass_report.ok())
        << "seed " << seed << ": " << pass_report.violations.front();
    const auto occupancy_report =
        validate_occupancy(collection, specs, result);
    EXPECT_TRUE(occupancy_report.ok())
        << "seed " << seed << ": " << occupancy_report.violations.front();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ValidateSweep,
    ::testing::Combine(
        ::testing::Values(ContentionRule::ServeFirst, ContentionRule::Priority),
        ::testing::Values(TiePolicy::KillAll, TiePolicy::FirstWins),
        ::testing::Values(1, 3),
        ::testing::Values(2, 6)),
    [](const ::testing::TestParamInfo<Params>& info) {
      std::string name = std::get<0>(info.param) == ContentionRule::ServeFirst
                             ? "sf"
                             : "prio";
      name += std::get<1>(info.param) == TiePolicy::KillAll ? "_killall"
                                                            : "_firstwins";
      name += "_B" + std::to_string(std::get<2>(info.param));
      name += "_L" + std::to_string(std::get<3>(info.param));
      return name;
    });

TEST(Validate, CatchesCorruptedStatus) {
  const auto collection = make_bundle_collection(1, 2, 4);
  SimConfig config;
  Simulator sim(collection, config);
  std::vector<LaunchSpec> specs(2);
  for (PathId id = 0; id < 2; ++id) {
    specs[id].path = id;
    specs[id].start_time = static_cast<SimTime>(3 * id);
    specs[id].wavelength = 0;
    specs[id].length = 3;
  }
  auto result = sim.run(specs);
  ASSERT_TRUE(validate_pass(collection, config, specs, result).ok());

  auto corrupted = result;
  corrupted.worms[0].finish_time += 1;
  EXPECT_FALSE(validate_pass(collection, config, specs, corrupted).ok());

  corrupted = result;
  corrupted.metrics.delivered += 1;
  EXPECT_FALSE(validate_pass(collection, config, specs, corrupted).ok());
}

TEST(Validate, CatchesBogusWitness) {
  const auto collection = make_bundle_collection(2, 2, 5);  // 2 structures
  SimConfig config;
  Simulator sim(collection, config);
  // Worms 0,1 on structure A (collide); worms 2,3 on structure B (free).
  std::vector<LaunchSpec> specs(4);
  for (PathId id = 0; id < 4; ++id) {
    specs[id].path = id;
    specs[id].start_time = id == 1 ? 1 : 0;
    specs[id].wavelength = 0;
    specs[id].length = 4;
  }
  auto result = sim.run(specs);
  ASSERT_EQ(result.worms[1].status, WormStatus::Killed);
  ASSERT_TRUE(validate_pass(collection, config, specs, result).ok());

  // Point worm 1's witness at a worm on the other structure.
  result.worms[1].blocked_by = 2;
  const auto report = validate_pass(collection, config, specs, result);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("witness"), std::string::npos);
}

TEST(Validate, OccupancyNeedsTrace) {
  const auto collection = make_bundle_collection(1, 1, 3);
  SimConfig config;  // record_trace = false
  Simulator sim(collection, config);
  std::vector<LaunchSpec> specs(1);
  specs[0].path = 0;
  specs[0].length = 2;
  const auto result = sim.run(specs);
  const auto report = validate_occupancy(collection, specs, result);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace opto
