// Definition 1.4 checker against known-symmetric and known-asymmetric
// topologies (the paper's applications rely on node symmetry for Thm 1.5).
#include <gtest/gtest.h>

#include "opto/graph/butterfly.hpp"
#include "opto/graph/complete.hpp"
#include "opto/graph/hypercube.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/graph/node_symmetry.hpp"
#include "opto/graph/ring.hpp"

namespace opto {
namespace {

TEST(NodeSymmetry, RingIsSymmetric) {
  EXPECT_TRUE(is_node_symmetric(make_ring(9)));
}

TEST(NodeSymmetry, CompleteIsSymmetric) {
  EXPECT_TRUE(is_node_symmetric(make_complete(5)));
}

TEST(NodeSymmetry, HypercubeIsSymmetric) {
  EXPECT_TRUE(is_node_symmetric(make_hypercube(3)));
}

TEST(NodeSymmetry, TorusIsSymmetric) {
  EXPECT_TRUE(is_node_symmetric(make_torus({3, 3}).graph));
}

TEST(NodeSymmetry, MeshIsNotSymmetric) {
  // Corners vs interior nodes differ.
  EXPECT_FALSE(is_node_symmetric(make_mesh({3, 3}).graph));
}

TEST(NodeSymmetry, PlainButterflyIsNotSymmetric) {
  EXPECT_FALSE(is_node_symmetric(make_butterfly(2).graph));
}

TEST(NodeSymmetry, PathGraphIsNot) {
  EXPECT_FALSE(is_node_symmetric(make_mesh({4}).graph));
}

TEST(NodeSymmetry, AutomorphismMapsRingRotation) {
  const auto ring = make_ring(6);
  const auto mapping = find_automorphism(ring, 0, 2);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ((*mapping)[0], 2u);
  // The image must preserve adjacency.
  for (NodeId u = 0; u < 6; ++u)
    for (NodeId v = 0; v < 6; ++v)
      EXPECT_EQ(ring.has_edge(u, v),
                ring.has_edge((*mapping)[u], (*mapping)[v]));
}

TEST(NodeSymmetry, NoAutomorphismBetweenCornerAndCenter) {
  const auto mesh = make_mesh({3, 3});
  EXPECT_FALSE(find_automorphism(mesh.graph, 0, 4).has_value());
}

TEST(NodeSymmetry, SingletonTriviallySymmetric) {
  Graph graph(1);
  EXPECT_TRUE(is_node_symmetric(graph));
}

}  // namespace
}  // namespace opto
