#include <gtest/gtest.h>

#include "opto/sim/occupancy.hpp"

namespace opto {
namespace {

Claim make_claim(WormId worm, SimTime entry, SimTime release,
                 std::uint32_t link_index = 0, std::uint32_t priority = 0) {
  Claim claim;
  claim.worm = worm;
  claim.priority = priority;
  claim.link_index = link_index;
  claim.entry = entry;
  claim.release = release;
  return claim;
}

TEST(Occupancy, EmptyHasNoOccupant) {
  OccupancyRegistry registry;
  EXPECT_FALSE(registry.occupant(3, 0, 10).has_value());
}

TEST(Occupancy, ClaimVisibleWithinWindow) {
  OccupancyRegistry registry;
  registry.claim(3, 1, make_claim(7, 5, 9));
  EXPECT_TRUE(registry.occupant(3, 1, 5).has_value());
  EXPECT_TRUE(registry.occupant(3, 1, 8).has_value());
  EXPECT_FALSE(registry.occupant(3, 1, 9).has_value());  // released
  EXPECT_FALSE(registry.occupant(3, 0, 6).has_value());  // other wavelength
  EXPECT_FALSE(registry.occupant(4, 1, 6).has_value());  // other link
}

TEST(Occupancy, OverwriteReplacesStaleClaim) {
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, 0, 4));
  registry.claim(2, 0, make_claim(9, 4, 8));
  const auto occ = registry.occupant(2, 0, 5);
  ASSERT_TRUE(occ.has_value());
  EXPECT_EQ(occ->worm, 9u);
}

TEST(Occupancy, ShortenCapsRelease) {
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, 0, 10));
  registry.shorten(2, 0, 1, 6);
  EXPECT_TRUE(registry.occupant(2, 0, 5).has_value());
  EXPECT_FALSE(registry.occupant(2, 0, 6).has_value());
}

TEST(Occupancy, ShortenIgnoresForeignClaims) {
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, 0, 10));
  registry.shorten(2, 0, /*worm=*/5, 3);  // not the owner
  EXPECT_TRUE(registry.occupant(2, 0, 8).has_value());
}

TEST(Occupancy, ShortenNeverExtends) {
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, 0, 5));
  registry.shorten(2, 0, 1, 9);
  EXPECT_FALSE(registry.occupant(2, 0, 6).has_value());
}

TEST(Occupancy, SweepDropsExpired) {
  OccupancyRegistry registry;
  registry.claim(1, 0, make_claim(1, 0, 5));
  registry.claim(2, 0, make_claim(2, 0, 20));
  EXPECT_EQ(registry.size(), 2u);
  registry.sweep(10);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.occupant(2, 0, 10).has_value());
}

TEST(Occupancy, ClearEmpties) {
  OccupancyRegistry registry;
  registry.claim(1, 0, make_claim(1, 0, 5));
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
}  // namespace opto
