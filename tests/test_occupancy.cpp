#include <gtest/gtest.h>

#include "opto/sim/occupancy.hpp"

namespace opto {
namespace {

Claim make_claim(WormId worm, SimTime entry, SimTime release,
                 std::uint32_t link_index = 0, std::uint32_t priority = 0) {
  Claim claim;
  claim.worm = worm;
  claim.priority = priority;
  claim.link_index = link_index;
  claim.entry = entry;
  claim.release = release;
  return claim;
}

TEST(Occupancy, EmptyHasNoOccupant) {
  OccupancyRegistry registry;
  EXPECT_FALSE(registry.occupant(3, 0, 10).has_value());
}

TEST(Occupancy, ClaimVisibleWithinWindow) {
  OccupancyRegistry registry;
  registry.claim(3, 1, make_claim(7, 5, 9));
  EXPECT_TRUE(registry.occupant(3, 1, 5).has_value());
  EXPECT_TRUE(registry.occupant(3, 1, 8).has_value());
  EXPECT_FALSE(registry.occupant(3, 1, 9).has_value());  // released
  EXPECT_FALSE(registry.occupant(3, 0, 6).has_value());  // other wavelength
  EXPECT_FALSE(registry.occupant(4, 1, 6).has_value());  // other link
}

TEST(Occupancy, OverwriteReplacesStaleClaim) {
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, 0, 4));
  registry.claim(2, 0, make_claim(9, 4, 8));
  const auto occ = registry.occupant(2, 0, 5);
  ASSERT_TRUE(occ.has_value());
  EXPECT_EQ(occ->worm, 9u);
}

TEST(Occupancy, ShortenCapsRelease) {
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, 0, 10));
  registry.shorten(2, 0, 1, 6);
  EXPECT_TRUE(registry.occupant(2, 0, 5).has_value());
  EXPECT_FALSE(registry.occupant(2, 0, 6).has_value());
}

TEST(Occupancy, ShortenIgnoresForeignClaims) {
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, 0, 10));
  registry.shorten(2, 0, /*worm=*/5, 3);  // not the owner
  EXPECT_TRUE(registry.occupant(2, 0, 8).has_value());
}

TEST(Occupancy, ShortenNeverExtends) {
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, 0, 5));
  registry.shorten(2, 0, 1, 9);
  EXPECT_FALSE(registry.occupant(2, 0, 6).has_value());
}

TEST(Occupancy, SweepDropsExpired) {
  OccupancyRegistry registry;
  registry.claim(1, 0, make_claim(1, 0, 5));
  registry.claim(2, 0, make_claim(2, 0, 20));
  EXPECT_EQ(registry.size(), 2u);
  registry.sweep(10);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.occupant(2, 0, 10).has_value());
}

TEST(Occupancy, ClearEmpties) {
  OccupancyRegistry registry;
  registry.claim(1, 0, make_claim(1, 0, 5));
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Occupancy, ShortenBelowEntryClampsToEntry) {
  // A release can never retreat past the claim's entry step: the head flit
  // occupied the link for at least that step.
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, /*entry=*/5, /*release=*/15));
  EXPECT_EQ(registry.shorten(2, 0, 1, /*new_release=*/2), 10);  // 15 -> 5
  EXPECT_FALSE(registry.occupant(2, 0, 5).has_value());
}

TEST(Occupancy, DoubleShortenKeepsMinimum) {
  OccupancyRegistry registry;
  registry.claim(2, 0, make_claim(1, 0, 20));
  EXPECT_EQ(registry.shorten(2, 0, 1, 8), 12);
  // A later, shallower cut must not push the release back out.
  EXPECT_EQ(registry.shorten(2, 0, 1, 11), 0);
  EXPECT_TRUE(registry.occupant(2, 0, 7).has_value());
  EXPECT_FALSE(registry.occupant(2, 0, 8).has_value());
}

TEST(Occupancy, SweepKeepsLiveClaims) {
  OccupancyRegistry registry;
  for (EdgeId link = 0; link < 16; ++link)
    registry.claim(link, 0,
                   make_claim(link, 0, link % 2 == 0 ? 5 : 50));
  EXPECT_EQ(registry.size(), 16u);
  registry.sweep(10);  // even links expired, odd links still streaming
  EXPECT_EQ(registry.size(), 8u);
  for (EdgeId link = 0; link < 16; ++link)
    EXPECT_EQ(registry.occupant(link, 0, 10).has_value(), link % 2 == 1);
}

TEST(Occupancy, SweepStepDrainsIncrementally) {
  OccupancyRegistry registry;
  for (EdgeId link = 0; link < 32; ++link)
    registry.claim(link, 0, make_claim(link, 0, 5));
  EXPECT_EQ(registry.size(), 32u);
  // Each call scans only `budget` slots; lapping the whole table once must
  // have retired every expired claim.
  const std::size_t budget = 4;
  for (std::size_t scanned = 0; scanned < registry.capacity();
       scanned += budget)
    registry.sweep_step(10, budget);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Occupancy, StatsCountProbesAndHits) {
  OccupancyRegistry registry;
  registry.claim(3, 1, make_claim(7, 0, 10));
  registry.reset_stats();
  EXPECT_TRUE(registry.occupant(3, 1, 5).has_value());
  const auto after_hit = registry.stats();
  EXPECT_GE(after_hit.probes, 1u);
  EXPECT_EQ(after_hit.hits, 1u);
  EXPECT_FALSE(registry.occupant(9, 0, 5).has_value());
  const auto after_miss = registry.stats();
  EXPECT_GT(after_miss.probes, after_hit.probes);
  EXPECT_EQ(after_miss.hits, 1u);
  registry.reset_stats();
  EXPECT_EQ(registry.stats().probes, 0u);
  EXPECT_EQ(registry.stats().hits, 0u);
}

TEST(Occupancy, GrowthPreservesEveryLiveClaim) {
  OccupancyRegistry registry;
  constexpr EdgeId kLinks = 500;  // forces several doublings
  for (EdgeId link = 0; link < kLinks; ++link)
    registry.claim(link, link % 3, make_claim(link, 0, 1000 + link));
  EXPECT_EQ(registry.size(), kLinks);
  EXPECT_GE(registry.capacity(), kLinks);
  for (EdgeId link = 0; link < kLinks; ++link) {
    const auto occ = registry.occupant(link, link % 3, 500);
    ASSERT_TRUE(occ.has_value()) << "link " << link;
    EXPECT_EQ(occ->worm, link);
    EXPECT_EQ(occ->release, static_cast<SimTime>(1000 + link));
  }
}

TEST(Occupancy, ReclaimingSameKeyDoesNotGrowSize) {
  OccupancyRegistry registry;
  registry.claim(4, 0, make_claim(1, 0, 5));
  registry.claim(4, 0, make_claim(2, 10, 20));  // expired claim overwritten
  EXPECT_EQ(registry.size(), 1u);
  const auto occ = registry.occupant(4, 0, 12);
  ASSERT_TRUE(occ.has_value());
  EXPECT_EQ(occ->worm, 2u);
}

TEST(Occupancy, SweptSlotIsReusable) {
  OccupancyRegistry registry;
  registry.claim(4, 0, make_claim(1, 0, 5));
  registry.sweep(10);
  EXPECT_EQ(registry.size(), 0u);
  registry.claim(4, 0, make_claim(2, 10, 20));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.occupant(4, 0, 15).has_value());
}

TEST(Occupancy, ClearThenReuseAcrossManyPasses) {
  // The epoch-based O(1) clear must isolate passes from each other while
  // reusing the same slot storage.
  OccupancyRegistry registry;
  for (int pass = 0; pass < 100; ++pass) {
    registry.clear();
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_FALSE(registry.occupant(7, 0, 1).has_value());
    registry.claim(7, 0, make_claim(static_cast<WormId>(pass), 0, 10));
    const auto occ = registry.occupant(7, 0, 1);
    ASSERT_TRUE(occ.has_value());
    EXPECT_EQ(occ->worm, static_cast<WormId>(pass));
  }
}

}  // namespace
}  // namespace opto
