#include <gtest/gtest.h>

#include "opto/graph/graph.hpp"

namespace opto {
namespace {

TEST(Graph, EmptyGraph) {
  Graph graph;
  EXPECT_EQ(graph.node_count(), 0u);
  EXPECT_EQ(graph.link_count(), 0u);
}

TEST(Graph, AddNodesAndEdges) {
  Graph graph(3, "tri");
  EXPECT_EQ(graph.node_count(), 3u);
  const EdgeId e01 = graph.add_edge(0, 1);
  const EdgeId e12 = graph.add_edge(1, 2);
  EXPECT_EQ(graph.link_count(), 4u);
  EXPECT_EQ(graph.undirected_edge_count(), 2u);
  EXPECT_EQ(graph.source(e01), 0u);
  EXPECT_EQ(graph.target(e01), 1u);
  EXPECT_EQ(graph.source(e12), 1u);
  EXPECT_EQ(graph.target(e12), 2u);
  EXPECT_EQ(graph.name(), "tri");
}

TEST(Graph, ReverseLinkPairing) {
  Graph graph(2);
  const EdgeId forward = graph.add_edge(0, 1);
  const EdgeId backward = Graph::reverse(forward);
  EXPECT_EQ(graph.source(backward), 1u);
  EXPECT_EQ(graph.target(backward), 0u);
  EXPECT_EQ(Graph::reverse(backward), forward);
}

TEST(Graph, OutLinksBothDirections) {
  Graph graph(3);
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  EXPECT_EQ(graph.out_links(0).size(), 1u);
  EXPECT_EQ(graph.out_links(1).size(), 2u);
  EXPECT_EQ(graph.out_links(2).size(), 1u);
  EXPECT_EQ(graph.degree(1), 2u);
  EXPECT_EQ(graph.max_degree(), 2u);
}

TEST(Graph, FindLinkDirectional) {
  Graph graph(3);
  const EdgeId e = graph.add_edge(0, 1);
  EXPECT_EQ(graph.find_link(0, 1), e);
  EXPECT_EQ(graph.find_link(1, 0), Graph::reverse(e));
  EXPECT_EQ(graph.find_link(0, 2), kInvalidEdge);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_FALSE(graph.has_edge(0, 2));
}

TEST(Graph, AddNodeGrows) {
  Graph graph(1);
  const NodeId added = graph.add_node();
  EXPECT_EQ(added, 1u);
  EXPECT_EQ(graph.node_count(), 2u);
  graph.add_edge(0, added);
  EXPECT_TRUE(graph.has_edge(0, 1));
}

TEST(GraphDeath, RejectsSelfLoop) {
  Graph graph(2);
  EXPECT_DEATH(graph.add_edge(1, 1), "self-loop");
}

TEST(GraphDeath, RejectsDuplicateEdge) {
  Graph graph(2);
  graph.add_edge(0, 1);
  EXPECT_DEATH(graph.add_edge(1, 0), "duplicate");
}

}  // namespace
}  // namespace opto
