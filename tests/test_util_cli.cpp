#include <gtest/gtest.h>

#include <vector>

#include "opto/util/cli.hpp"

namespace opto {
namespace {

TEST(Cli, DefaultsSurviveEmptyArgv) {
  CliParser cli("prog", "test");
  const auto* n = cli.add_int("n", 7, "count");
  const auto* rate = cli.add_double("rate", 0.5, "rate");
  const auto* name = cli.add_string("name", "x", "label");
  const auto* flag = cli.add_flag("verbose", "noise");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(*n, 7);
  EXPECT_DOUBLE_EQ(*rate, 0.5);
  EXPECT_EQ(*name, "x");
  EXPECT_FALSE(*flag);
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  CliParser cli("prog", "test");
  const auto* n = cli.add_int("n", 0, "count");
  const auto* rate = cli.add_double("rate", 0.0, "rate");
  const char* argv[] = {"prog", "--n=13", "--rate", "2.25"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(*n, 13);
  EXPECT_DOUBLE_EQ(*rate, 2.25);
}

TEST(Cli, FlagWithoutValueIsTrue) {
  CliParser cli("prog", "test");
  const auto* flag = cli.add_flag("fast", "speed");
  const char* argv[] = {"prog", "--fast"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(*flag);
}

TEST(Cli, FlagExplicitFalse) {
  CliParser cli("prog", "test");
  const auto* flag = cli.add_flag("fast", "speed");
  const char* argv[] = {"prog", "--fast=false"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(*flag);
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--mystery=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, BadIntFails) {
  CliParser cli("prog", "test");
  cli.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, MissingValueFails) {
  CliParser cli("prog", "test");
  cli.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, PositionalArgumentRejected) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv));
}

}  // namespace
}  // namespace opto
