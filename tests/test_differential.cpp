// Differential testing: the fast claim-registry engine vs the flit-level
// reference engine, which recomputes occupancy from first principles.
// Every worm's status, finish time, blocker, and truncation flag — and
// all pass metrics — must agree exactly, across rules, tie policies,
// bandwidths, worm lengths, and workload families.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "opto/graph/butterfly.hpp"
#include "opto/graph/mesh.hpp"
#include "opto/paths/butterfly_paths.hpp"
#include "opto/paths/lowerbound_structures.hpp"
#include "opto/paths/workloads.hpp"
#include "opto/rng/rng.hpp"
#include "opto/sim/reference.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {
namespace {

void expect_equivalent(const PathCollection& collection,
                       const SimConfig& config,
                       const std::vector<LaunchSpec>& specs,
                       const std::string& context) {
  Simulator fast(collection, config);
  const PassResult a = fast.run(specs);
  const PassResult b = reference_run(collection, config, specs);

  ASSERT_EQ(a.worms.size(), b.worms.size()) << context;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(a.worms[i].status, b.worms[i].status)
        << context << " worm " << i;
    EXPECT_EQ(a.worms[i].finish_time, b.worms[i].finish_time)
        << context << " worm " << i;
    EXPECT_EQ(a.worms[i].truncated, b.worms[i].truncated)
        << context << " worm " << i;
    if (a.worms[i].status == WormStatus::Killed) {
      EXPECT_EQ(a.worms[i].blocked_by, b.worms[i].blocked_by)
          << context << " worm " << i;
      EXPECT_EQ(a.worms[i].blocked_at_link, b.worms[i].blocked_at_link)
          << context << " worm " << i;
    }
  }
  EXPECT_EQ(a.metrics.launched, b.metrics.launched) << context;
  EXPECT_EQ(a.metrics.delivered, b.metrics.delivered) << context;
  EXPECT_EQ(a.metrics.killed, b.metrics.killed) << context;
  EXPECT_EQ(a.metrics.truncated, b.metrics.truncated) << context;
  EXPECT_EQ(a.metrics.truncated_arrivals, b.metrics.truncated_arrivals)
      << context;
  EXPECT_EQ(a.metrics.contentions, b.metrics.contentions) << context;
  EXPECT_EQ(a.metrics.worm_steps, b.metrics.worm_steps) << context;
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan) << context;
}

std::vector<LaunchSpec> random_specs(const PathCollection& collection,
                                     std::uint16_t bandwidth,
                                     std::uint32_t length, SimTime spread,
                                     Rng& rng) {
  std::vector<LaunchSpec> specs(collection.size());
  const auto ranks = rng.permutation(collection.size());
  for (PathId id = 0; id < collection.size(); ++id) {
    specs[id].path = id;
    specs[id].start_time = static_cast<SimTime>(
        rng.next_below(static_cast<std::uint64_t>(spread)));
    specs[id].wavelength =
        static_cast<Wavelength>(rng.next_below(bandwidth));
    specs[id].priority = ranks[id];
    specs[id].length = length;
  }
  return specs;
}

using Params = std::tuple<ContentionRule, TiePolicy, int, int>;

class Differential : public ::testing::TestWithParam<Params> {
 protected:
  SimConfig config() const {
    SimConfig cfg;
    cfg.rule = std::get<0>(GetParam());
    cfg.tie = std::get<1>(GetParam());
    cfg.bandwidth = static_cast<std::uint16_t>(std::get<2>(GetParam()));
    return cfg;
  }
  std::uint32_t length() const {
    return static_cast<std::uint32_t>(std::get<3>(GetParam()));
  }
};

TEST_P(Differential, TorusRandomFunctions) {
  auto topo = std::make_shared<MeshTopology>(make_torus({4, 4}));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const auto collection = mesh_random_function(topo, rng);
    const auto specs =
        random_specs(collection, config().bandwidth, length(), 6, rng);
    expect_equivalent(collection, config(), specs,
                      "torus seed " + std::to_string(seed));
  }
}

TEST_P(Differential, ButterflyPermutations) {
  auto topo = std::make_shared<ButterflyTopology>(make_butterfly(4));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(100 + seed);
    const auto perm = random_permutation(topo->rows(), rng);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> requests;
    for (std::uint32_t r = 0; r < topo->rows(); ++r)
      requests.emplace_back(r, perm[r]);
    const auto collection = butterfly_io_collection(topo, requests);
    const auto specs =
        random_specs(collection, config().bandwidth, length(), 5, rng);
    expect_equivalent(collection, config(), specs,
                      "butterfly seed " + std::to_string(seed));
  }
}

TEST_P(Differential, LowerBoundStructures) {
  StructureBuilder builder;
  builder.add_staircase(5, 3 * length() + 2, std::max(2u, length()));
  builder.add_bundle(10, 8);
  builder.add_triangle(std::max(2u, length()) + 4, std::max(2u, length()));
  const auto collection = std::move(builder).build();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(200 + seed);
    const auto specs =
        random_specs(collection, config().bandwidth, length(), 4, rng);
    expect_equivalent(collection, config(), specs,
                      "structures seed " + std::to_string(seed));
  }
}

TEST_P(Differential, TightPackedBundle) {
  // Worst-case contention: everyone in a tiny delay window on one chain.
  const auto collection = make_bundle_collection(1, 16, 12);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(300 + seed);
    const auto specs =
        random_specs(collection, config().bandwidth, length(), 3, rng);
    expect_equivalent(collection, config(), specs,
                      "bundle seed " + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Differential,
    ::testing::Combine(
        ::testing::Values(ContentionRule::ServeFirst, ContentionRule::Priority),
        ::testing::Values(TiePolicy::KillAll, TiePolicy::FirstWins),
        ::testing::Values(1, 3),
        ::testing::Values(1, 2, 7)),
    [](const ::testing::TestParamInfo<Params>& info) {
      std::string name = std::get<0>(info.param) == ContentionRule::ServeFirst
                             ? "sf"
                             : "prio";
      name += std::get<1>(info.param) == TiePolicy::KillAll ? "_killall"
                                                            : "_firstwins";
      name += "_B" + std::to_string(std::get<2>(info.param));
      name += "_L" + std::to_string(std::get<3>(info.param));
      return name;
    });

}  // namespace
}  // namespace opto
