// Oracle tests for the RWA strategy layer: hand-computed First-Fit /
// Least-Used / Random-Fit assignments on small named topologies, and a
// brute-force k-shortest-path oracle (exhaustive simple-path enumeration
// in the canonical (length, lexicographic) order) cross-checked against
// the Yen implementation over a few hundred generated graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "opto/graph/fattree.hpp"
#include "opto/graph/graph.hpp"
#include "opto/graph/ring.hpp"
#include "opto/rng/philox.hpp"
#include "opto/rng/rng.hpp"
#include "opto/rwa/ksp.hpp"
#include "opto/rwa/strategy.hpp"

namespace opto::rwa {
namespace {

Graph make_chain(NodeId nodes) {
  Graph graph(nodes, "chain");
  for (NodeId i = 0; i + 1 < nodes; ++i) graph.add_edge(i, i + 1);
  return graph;
}

/// Serves one request and returns the single assigned wavelength, or
/// nullopt when blocked. Asserts the single-route shape.
std::optional<Wavelength> serve(Strategy& strategy, NodeId source,
                                NodeId destination, std::uint32_t uid) {
  const RwaDecision decision =
      strategy.assign(RwaRequest{source, destination}, uid);
  if (!decision.accepted) return std::nullopt;
  EXPECT_EQ(decision.routes.size(), 1u);
  EXPECT_EQ(decision.lambdas.size(), 1u);
  EXPECT_EQ(decision.routes.front().source(), source);
  EXPECT_EQ(decision.routes.front().destination(), destination);
  return decision.lambdas.front();
}

TEST(RwaOracle, FirstFitOnChainByHand) {
  // Chain 0-1-2-3-4-5, B=2. (0→3) takes λ0 on links 0→1,1→2,2→3;
  // (1→2) finds λ0 busy on its only link and opens λ1; (3→5) is
  // link-disjoint from both so the lowest index λ0 is free again;
  // (0→5) then needs 1→2 where both wavelengths are taken → blocked.
  const Graph graph = make_chain(6);
  RwaConfig config;
  config.bandwidth = 2;
  config.candidates = 3;
  const auto strategy = make_strategy(StrategyKind::FirstFit);
  strategy->begin(graph, config, 1);
  EXPECT_EQ(serve(*strategy, 0, 3, 0), Wavelength{0});
  EXPECT_EQ(serve(*strategy, 1, 2, 1), Wavelength{1});
  EXPECT_EQ(serve(*strategy, 3, 5, 2), Wavelength{0});
  EXPECT_EQ(serve(*strategy, 0, 5, 3), std::nullopt);
}

TEST(RwaOracle, LeastUsedSpreadsOverInServiceWavelengthsByHand) {
  // Same chain and arrival order as the First-Fit case. After (0→3)
  // on λ0 (usage 3 links) and (1→2) on λ1 (usage 1 link), the (3→5)
  // route has both wavelengths free: First-Fit takes λ0, Least-Used
  // takes the lighter in-service λ1.
  const Graph graph = make_chain(6);
  RwaConfig config;
  config.bandwidth = 2;
  config.candidates = 3;
  const auto strategy = make_strategy(StrategyKind::LeastUsed);
  strategy->begin(graph, config, 1);
  EXPECT_EQ(serve(*strategy, 0, 3, 0), Wavelength{0});
  EXPECT_EQ(serve(*strategy, 1, 2, 1), Wavelength{1});
  EXPECT_EQ(serve(*strategy, 3, 5, 2), Wavelength{1});
}

TEST(RwaOracle, LeastUsedOpensTheBandAsReluctantlyAsFirstFit) {
  // With nothing in service Least-Used must fall back to the lowest
  // unused index, not jump to a high one: the band opens λ0 first.
  const Graph graph = make_ring(8);
  RwaConfig config;
  config.bandwidth = 4;
  const auto strategy = make_strategy(StrategyKind::LeastUsed);
  strategy->begin(graph, config, 1);
  EXPECT_EQ(serve(*strategy, 0, 2, 0), Wavelength{0});
  // Ring routes 0→2 and 2→4 share no directed link; λ0 stays feasible
  // and is the only in-service wavelength, so it is reused, not λ1.
  EXPECT_EQ(serve(*strategy, 2, 4, 1), Wavelength{0});
}

TEST(RwaOracle, RandomFitMatchesTheKeyedPhiloxDrawByHand) {
  // On a fresh ring every wavelength is free, so Random-Fit's pick for
  // uid u must be exactly free[CounterRng(seed, round).below(B, u, 8)]
  // (slot 8 = kSlotRwaWavelength in rwa/strategy.cpp) with
  // free = {0, …, B-1}.
  const Graph graph = make_ring(8);
  RwaConfig config;
  config.bandwidth = 4;
  config.seed = 0x5eedULL;
  const auto strategy = make_strategy(StrategyKind::RandomFit);
  for (const std::uint32_t round : {1u, 2u, 5u}) {
    strategy->begin(graph, config, round);
    const CounterRng rng(config.seed, round);
    // Node-disjoint requests: each pick sees the full free band.
    std::uint32_t uid = 0;
    for (const auto [s, d] : {std::pair<NodeId, NodeId>{0, 1}, {2, 3},
                              {4, 5}, {6, 7}}) {
      const auto expected =
          static_cast<Wavelength>(rng.below(config.bandwidth, uid, 8));
      EXPECT_EQ(serve(*strategy, s, d, uid), expected)
          << "round " << round << " uid " << uid;
      ++uid;
    }
  }
}

TEST(RwaOracle, RadixTwoFatTreeIsATreeWithTheUniqueRoute) {
  // The radix-2 fat tree: 1 core, 2 pods × (1 agg + 1 edge), 1 host per
  // edge switch — 7 nodes, and a tree, so KSP finds exactly one route
  // between the two hosts: host-edge-agg-core-agg-edge-host.
  const FatTreeTopology topo = make_fat_tree(2);
  ASSERT_EQ(topo.graph.node_count(), 7u);
  ASSERT_EQ(topo.hosts.size(), 2u);
  const NodeId a = topo.hosts[0], b = topo.hosts[1];
  const auto routes = k_shortest_routes(topo.graph, a, b, 4);
  ASSERT_EQ(routes.size(), 1u);
  const std::vector<NodeId> expected{a, topo.edge(0, 0), topo.aggregation(0, 0),
                                     topo.core(0), topo.aggregation(1, 0),
                                     topo.edge(1, 0), b};
  EXPECT_EQ(routes.front(), expected);

  // Opposite directions use opposite directed links, so both host pairs
  // fit on λ0 even at B=1.
  RwaConfig config;
  config.bandwidth = 1;
  const auto strategy = make_strategy(StrategyKind::FirstFit);
  strategy->begin(topo.graph, config, 1);
  EXPECT_EQ(serve(*strategy, a, b, 0), Wavelength{0});
  EXPECT_EQ(serve(*strategy, b, a, 1), Wavelength{0});
  // A second same-direction request has nowhere to go at B=1.
  EXPECT_EQ(serve(*strategy, a, b, 2), std::nullopt);
}

TEST(RwaOracle, FatTreeHostsInOnePodStayBelowTheCore) {
  // Radix 4: hosts on the same edge switch are 2 apart; same pod across
  // edge switches is 4 (host-edge-agg-edge-host); only cross-pod routes
  // climb to a core (length 6).
  const FatTreeTopology topo = make_fat_tree(4);
  ASSERT_GE(topo.hosts.size(), 5u);
  const auto same_edge =
      k_shortest_routes(topo.graph, topo.hosts[0], topo.hosts[1], 1);
  ASSERT_EQ(same_edge.size(), 1u);
  EXPECT_EQ(same_edge.front().size(), 3u);
  const auto same_pod =
      k_shortest_routes(topo.graph, topo.hosts[0], topo.hosts[2], 1);
  ASSERT_EQ(same_pod.size(), 1u);
  EXPECT_EQ(same_pod.front().size(), 5u);
  const auto cross_pod =
      k_shortest_routes(topo.graph, topo.hosts[0], topo.hosts[4], 1);
  ASSERT_EQ(cross_pod.size(), 1u);
  EXPECT_EQ(cross_pod.front().size(), 7u);
}

/// Exhaustive oracle: every simple path source→destination by DFS, in
/// the same canonical (length, lexicographic node sequence) order the
/// Yen enumeration promises.
std::vector<std::vector<NodeId>> brute_force_routes(const Graph& graph,
                                                    NodeId source,
                                                    NodeId destination,
                                                    std::uint32_t k) {
  std::vector<std::vector<NodeId>> all;
  std::vector<NodeId> walk{source};
  std::vector<char> visited(graph.node_count(), 0);
  visited[source] = 1;
  const auto dfs = [&](auto&& self, NodeId at) -> void {
    if (at == destination) {
      all.push_back(walk);
      return;
    }
    for (const EdgeId link : graph.out_links(at)) {
      const NodeId next = graph.target(link);
      if (visited[next]) continue;
      visited[next] = 1;
      walk.push_back(next);
      self(self, next);
      walk.pop_back();
      visited[next] = 0;
    }
  };
  dfs(dfs, source);
  std::sort(all.begin(), all.end(),
            [](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(RwaOracle, YenMatchesBruteForceOnGeneratedGraphs) {
  // ~200 random graphs (2–8 nodes, Bernoulli edges, disconnected pairs
  // included), several (source, destination, k) probes each: the Yen
  // enumeration must equal the exhaustive oracle sequence-for-sequence.
  std::uint64_t probes = 0, nonempty = 0, truncated = 0;
  for (std::uint64_t g = 0; g < 200; ++g) {
    Rng rng = Rng::stream(0xac1e, g);
    const NodeId nodes = static_cast<NodeId>(2 + rng.next_below(7));
    Graph graph(nodes);
    for (NodeId u = 0; u < nodes; ++u)
      for (NodeId v = u + 1; v < nodes; ++v)
        if (rng.next_bernoulli(0.4)) graph.add_edge(u, v);
    for (std::uint32_t probe = 0; probe < 4; ++probe) {
      const NodeId source = static_cast<NodeId>(rng.next_below(nodes));
      const NodeId destination = static_cast<NodeId>(rng.next_below(nodes));
      const std::uint32_t k = 1u << rng.next_below(4);  // 1, 2, 4, 8
      const auto expected =
          brute_force_routes(graph, source, destination, k);
      const auto actual = k_shortest_routes(graph, source, destination, k);
      ASSERT_EQ(actual, expected)
          << "graph " << g << " probe " << probe << " (" << source << "→"
          << destination << ", k=" << k << ")";
      ++probes;
      if (!expected.empty()) ++nonempty;
      if (expected.size() == k) ++truncated;
    }
  }
  // The sweep must actually exercise reachable pairs and the k-cutoff,
  // not vacuously compare empty sets.
  EXPECT_EQ(probes, 800u);
  EXPECT_GE(nonempty, 400u);
  EXPECT_GE(truncated, 50u);
}

TEST(RwaOracle, SourceEqualsDestinationIsTheZeroLengthRoute) {
  const Graph graph = make_chain(4);
  const auto routes = k_shortest_routes(graph, 2, 2, 5);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes.front(), std::vector<NodeId>{2});
}

}  // namespace
}  // namespace opto::rwa
