// Hand-computed scenarios for the wormhole engine under the serve-first
// rule. Every expectation below is derived directly from the model:
// a worm injected at s enters link i at s+i and occupies it for its flit
// length; an entrant finding the wavelength busy is eliminated; its
// upstream flits keep draining (and keep blocking).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "opto/paths/path_collection.hpp"
#include "opto/sim/simulator.hpp"

namespace opto {
namespace {

/// Chain graph 0-1-2-...-n with extra edges on demand.
std::shared_ptr<Graph> make_chain(NodeId nodes) {
  auto graph = std::make_shared<Graph>(nodes, "chain");
  for (NodeId u = 0; u + 1 < nodes; ++u) graph->add_edge(u, u + 1);
  return graph;
}

PathCollection chain_bundle(std::shared_ptr<const Graph> graph, NodeId from,
                            NodeId to, std::uint32_t copies) {
  PathCollection collection(graph);
  std::vector<NodeId> nodes;
  for (NodeId u = from; u <= to; ++u) nodes.push_back(u);
  for (std::uint32_t c = 0; c < copies; ++c)
    collection.add(Path::from_nodes(*graph, nodes));
  return collection;
}

LaunchSpec spec(PathId path, SimTime start, Wavelength wl, std::uint32_t len,
                std::uint32_t priority = 0) {
  LaunchSpec s;
  s.path = path;
  s.start_time = start;
  s.wavelength = wl;
  s.length = len;
  s.priority = priority;
  return s;
}

TEST(Simulator, SingleWormDeliversOnSchedule) {
  const auto graph = make_chain(5);  // path length 4
  const auto collection = chain_bundle(graph, 0, 4, 1);
  Simulator sim(collection, {});
  const auto result = sim.run(std::vector<LaunchSpec>{spec(0, 0, 0, 3)});

  ASSERT_EQ(result.worms.size(), 1u);
  EXPECT_TRUE(result.worms[0].delivered_intact());
  // Head enters last link (index 3) at t=3; tail leaves at 3 + L - 1 = 5.
  EXPECT_EQ(result.worms[0].finish_time, 5);
  EXPECT_EQ(result.metrics.delivered, 1u);
  EXPECT_EQ(result.metrics.killed, 0u);
  EXPECT_EQ(result.metrics.makespan, 5);
}

TEST(Simulator, SingleWormWithDelay) {
  const auto graph = make_chain(3);
  const auto collection = chain_bundle(graph, 0, 2, 1);
  Simulator sim(collection, {});
  const auto result = sim.run(std::vector<LaunchSpec>{spec(0, 7, 0, 2)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  // Enters link 1 at t=8, tail leaves at 8 + 1 = 9.
  EXPECT_EQ(result.worms[0].finish_time, 9);
}

TEST(Simulator, ZeroLengthPathDeliversInstantly) {
  const auto graph = make_chain(2);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{1}));
  Simulator sim(collection, {});
  const auto result = sim.run(std::vector<LaunchSpec>{spec(0, 4, 0, 5)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_EQ(result.worms[0].finish_time, 4);
}

TEST(Simulator, LaterWormEliminatedByOccupant) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 2);
  Simulator sim(collection, {});
  // w0 occupies link 0 during [0, 2]; w1 arrives at t=1 -> eliminated.
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 3), spec(1, 1, 0, 3)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_EQ(result.worms[1].status, WormStatus::Killed);
  EXPECT_EQ(result.worms[1].blocked_by, 0u);
  EXPECT_EQ(result.worms[1].blocked_at_link, 0u);
  EXPECT_EQ(result.worms[1].finish_time, 1);
  EXPECT_EQ(result.metrics.killed, 1u);
  EXPECT_EQ(result.metrics.contentions, 1u);
}

TEST(Simulator, DisjointWavelengthsDoNotCollide) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 2);
  SimConfig config;
  config.bandwidth = 2;
  Simulator sim(collection, config);
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 3), spec(1, 0, 1, 3)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_TRUE(result.worms[1].delivered_intact());
  EXPECT_EQ(result.metrics.contentions, 0u);
}

TEST(Simulator, SpacedWormsShareLinkSequentially) {
  const auto graph = make_chain(5);
  const auto collection = chain_bundle(graph, 0, 4, 2);
  Simulator sim(collection, {});
  // w0 frees link 0 after step L-1=2; w1 entering at t=3 fits behind it.
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 3), spec(1, 3, 0, 3)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_TRUE(result.worms[1].delivered_intact());
}

TEST(Simulator, SimultaneousArrivalKillAll) {
  const auto graph = make_chain(4);
  const auto collection = chain_bundle(graph, 0, 3, 2);
  Simulator sim(collection, {});  // default tie: KillAll
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 2), spec(1, 0, 0, 2)});
  EXPECT_EQ(result.worms[0].status, WormStatus::Killed);
  EXPECT_EQ(result.worms[1].status, WormStatus::Killed);
  // Dead-heat: each cites the other as witness.
  EXPECT_EQ(result.worms[0].blocked_by, 1u);
  EXPECT_EQ(result.worms[1].blocked_by, 0u);
}

TEST(Simulator, SimultaneousArrivalFirstWins) {
  const auto graph = make_chain(4);
  const auto collection = chain_bundle(graph, 0, 3, 2);
  SimConfig config;
  config.tie = TiePolicy::FirstWins;
  Simulator sim(collection, config);
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 2), spec(1, 0, 0, 2)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_EQ(result.worms[1].status, WormStatus::Killed);
  EXPECT_EQ(result.worms[1].blocked_by, 0u);
}

TEST(Simulator, CrossingPathsCollideOnSharedLink) {
  // A: 0-1-2-3, B: 4-1-2-5. Shared link 1->2 at position 1 on both.
  auto graph = std::make_shared<Graph>(6, "cross");
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(2, 3);
  graph->add_edge(4, 1);
  graph->add_edge(2, 5);
  PathCollection collection(graph);
  collection.add(
      Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(
      Path::from_nodes(*graph, std::vector<NodeId>{4, 1, 2, 5}));

  Simulator sim(collection, {});
  // A enters 1->2 at t=1, occupies [1, 3] (L=3); B arrives there at t=2.
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 3), spec(1, 1, 0, 3)});
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_EQ(result.worms[1].status, WormStatus::Killed);
  EXPECT_EQ(result.worms[1].blocked_at_link, 1u);
  EXPECT_EQ(result.worms[1].blocked_by, 0u);
}

TEST(Simulator, DrainingWormStillBlocksUpstream) {
  // B (4-1-2-5) is killed at link 1->2 but its flits drain through 4->1
  // and must still eliminate C (4-1-6) there.
  auto graph = std::make_shared<Graph>(7, "drain");
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(2, 3);
  graph->add_edge(4, 1);
  graph->add_edge(2, 5);
  graph->add_edge(1, 6);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{4, 1, 2, 5}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{4, 1, 6}));

  Simulator sim(collection, {});
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 3),   // A delivers
      spec(1, 1, 0, 3),   // B killed at 1->2 at t=2; occupies 4->1 on [1,3]
      spec(2, 2, 0, 3)}); // C hits 4->1 at t=2 -> killed by draining B
  EXPECT_TRUE(result.worms[0].delivered_intact());
  EXPECT_EQ(result.worms[1].status, WormStatus::Killed);
  EXPECT_EQ(result.worms[2].status, WormStatus::Killed);
  EXPECT_EQ(result.worms[2].blocked_by, 1u);
  EXPECT_EQ(result.worms[2].blocked_at_link, 0u);
}

TEST(Simulator, WormPassesAfterDrainWindow) {
  // Same geometry, but C arrives after B's flits fully drained off 4->1.
  auto graph = std::make_shared<Graph>(7, "drain2");
  graph->add_edge(0, 1);
  graph->add_edge(1, 2);
  graph->add_edge(2, 3);
  graph->add_edge(4, 1);
  graph->add_edge(2, 5);
  graph->add_edge(1, 6);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{4, 1, 2, 5}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{4, 1, 6}));

  Simulator sim(collection, {});
  // B occupies 4->1 on [1, 3]; C enters at t=4.
  const auto result = sim.run(std::vector<LaunchSpec>{
      spec(0, 0, 0, 3), spec(1, 1, 0, 3), spec(2, 4, 0, 3)});
  EXPECT_TRUE(result.worms[2].delivered_intact());
}

TEST(Simulator, TraceRecordsLifecycle) {
  const auto graph = make_chain(4);
  const auto collection = chain_bundle(graph, 0, 3, 2);
  SimConfig config;
  config.record_trace = true;
  Simulator sim(collection, config);
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 2), spec(1, 1, 0, 2)});

  std::size_t injects = 0, admits = 0, kills = 0, delivers = 0;
  for (const auto& event : result.trace.events()) {
    switch (event.kind) {
      case TraceKind::Inject: ++injects; break;
      case TraceKind::Admit: ++admits; break;
      case TraceKind::Kill: ++kills; break;
      case TraceKind::Deliver: ++delivers; break;
      default: break;
    }
  }
  EXPECT_EQ(injects, 2u);
  EXPECT_EQ(admits, 3u);  // w0 crosses 3 links; w1 admitted nowhere
  EXPECT_EQ(kills, 1u);
  EXPECT_EQ(delivers, 1u);
}

TEST(Simulator, MetricsCountWormSteps) {
  const auto graph = make_chain(6);
  const auto collection = chain_bundle(graph, 0, 5, 1);
  Simulator sim(collection, {});
  const auto result = sim.run(std::vector<LaunchSpec>{spec(0, 0, 0, 2)});
  EXPECT_EQ(result.metrics.worm_steps, 5u);
  EXPECT_EQ(result.metrics.launched, 1u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto graph = make_chain(6);
  const auto collection = chain_bundle(graph, 0, 5, 4);
  Simulator sim(collection, {});
  const std::vector<LaunchSpec> specs{spec(0, 0, 0, 3), spec(1, 1, 0, 3),
                                      spec(2, 2, 0, 3), spec(3, 5, 0, 3)};
  const auto a = sim.run(specs);
  const auto b = sim.run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(a.worms[i].status, b.worms[i].status);
    EXPECT_EQ(a.worms[i].finish_time, b.worms[i].finish_time);
  }
}

TEST(Simulator, LinkBusyStepsSingleWorm) {
  const auto graph = make_chain(5);  // 4 undirected = 8 directed links
  const auto collection = chain_bundle(graph, 0, 4, 1);
  Simulator sim(collection, {});
  const auto result = sim.run(std::vector<LaunchSpec>{spec(0, 0, 0, 3)});
  // 4 links × 3 flits each.
  EXPECT_EQ(result.metrics.link_busy_steps, 12u);
  // makespan 5 → 6 steps × 8 links × B=1 slots.
  EXPECT_DOUBLE_EQ(result.metrics.utilization(8, 1), 12.0 / 48.0);
}

TEST(Simulator, LinkBusyStepsAccountTruncationTrim) {
  const auto graph = make_chain(5);
  PathCollection collection(graph);
  const std::vector<NodeId> nodes{0, 1, 2, 3, 4};
  collection.add(Path::from_nodes(*graph, nodes));
  collection.add(Path::from_nodes(*graph, nodes));
  SimConfig config;
  config.rule = ContentionRule::Priority;
  Simulator sim(collection, config);
  // w0 (rank 1, L=4) is cut at link 0 at t=2 by w1 (rank 2): w0's stream
  // shrinks to 2 flits everywhere, so it occupies 2 per link (8 total);
  // w1 occupies 4 per link (16 total).
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 4, 1), spec(1, 2, 0, 4, 2)});
  ASSERT_EQ(result.metrics.truncated, 1u);
  EXPECT_EQ(result.metrics.link_busy_steps, 8u + 16u);
}

TEST(Simulator, TruncatedDrainFinalizesMonotonically) {
  const auto graph = make_chain(5);
  PathCollection collection(graph);
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{0, 1, 2, 3, 4}));
  collection.add(Path::from_nodes(*graph, std::vector<NodeId>{3, 4}));
  SimConfig config;
  config.rule = ContentionRule::Priority;
  config.record_trace = true;
  Simulator sim(collection, config);
  // w0 (rank 1, L=10) drains from t=4 and would finish at 3 + 10 - 1 = 12.
  // w1 (rank 2) enters link 3->4 at t=6 and cuts w0 there: the remnant is
  // 6 - 3 = 3 flits, so w0's tail actually left the last link at
  // 3 + 3 - 1 = 5 — already in the past. The engine must finalize w0 on
  // the spot (finish_time 5) instead of letting the drain scan emit a
  // Deliver event stamped before the Truncate it just recorded.
  const auto result = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 10, 1), spec(1, 6, 0, 2, 2)});
  EXPECT_EQ(result.worms[0].status, WormStatus::Delivered);
  EXPECT_TRUE(result.worms[0].truncated);
  EXPECT_FALSE(result.worms[0].delivered_intact());
  EXPECT_EQ(result.worms[0].finish_time, 5);
  EXPECT_TRUE(result.worms[1].delivered_intact());
  EXPECT_EQ(result.worms[1].finish_time, 7);
  EXPECT_EQ(result.metrics.truncated, 1u);
  EXPECT_EQ(result.metrics.truncated_arrivals, 1u);
  EXPECT_EQ(result.metrics.delivered, 1u);
  EXPECT_EQ(result.metrics.killed, 0u);
  // The trace stays time-monotonic; w0's Deliver is stamped at the cut.
  SimTime last = 0;
  bool saw_w0_deliver = false;
  for (const auto& event : result.trace.events()) {
    EXPECT_GE(event.time, last);
    last = event.time;
    if (event.kind == TraceKind::Deliver && event.worm == 0) {
      saw_w0_deliver = true;
      EXPECT_EQ(event.time, 6);
    }
  }
  EXPECT_TRUE(saw_w0_deliver);
}

TEST(Simulator, LongWormBlocksWholeWindow) {
  const auto graph = make_chain(3);
  const auto collection = chain_bundle(graph, 0, 2, 2);
  Simulator sim(collection, {});
  // L=10: w0 occupies link 0 during [0, 9]; w1 at t=9 still blocked.
  const auto blocked = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 10), spec(1, 9, 0, 10)});
  EXPECT_EQ(blocked.worms[1].status, WormStatus::Killed);
  // At t=10 the link is free.
  const auto free = sim.run(
      std::vector<LaunchSpec>{spec(0, 0, 0, 10), spec(1, 10, 0, 10)});
  EXPECT_TRUE(free.worms[1].delivered_intact());
}

}  // namespace
}  // namespace opto
